package joi

import (
	"strings"
	"testing"

	"repro/internal/jsontext"
)

func check(t *testing.T, s *Schema, doc string, wantValid bool) {
	t.Helper()
	errs := s.Validate(jsontext.MustParse(doc))
	if (len(errs) == 0) != wantValid {
		t.Errorf("Validate(%s): valid=%v, want %v (errors: %v)", doc, len(errs) == 0, wantValid, errs)
	}
}

func TestAtomSchemas(t *testing.T) {
	check(t, Null(), `null`, true)
	check(t, Null(), `0`, false)
	check(t, Boolean(), `true`, true)
	check(t, Boolean(), `"true"`, false)
	check(t, Any(), `{"x": [1]}`, true)
}

func TestNumberConstraints(t *testing.T) {
	s := Number().Integer().Min(0).Max(100)
	check(t, s, `50`, true)
	check(t, s, `50.5`, false)
	check(t, s, `-1`, false)
	check(t, s, `101`, false)
	check(t, s, `"50"`, false)
	check(t, Number().Positive(), `0`, false)
	check(t, Number().Positive(), `1`, true)
}

func TestStringConstraints(t *testing.T) {
	s := String().Min(2).Max(5).Pattern(`^[a-z]+$`)
	check(t, s, `"abc"`, true)
	check(t, s, `"a"`, false)
	check(t, s, `"abcdef"`, false)
	check(t, s, `"ABC"`, false)
	check(t, s, `5`, false)
}

func TestValidAllowList(t *testing.T) {
	s := String().Valid("red", "green", "blue")
	check(t, s, `"red"`, true)
	check(t, s, `"yellow"`, false)
	n := Any().Valid(1, 2, nil)
	check(t, n, `null`, true)
	check(t, n, `2`, true)
	check(t, n, `3`, false)
}

func TestArrayConstraints(t *testing.T) {
	s := Array().Items(Number()).Min(1).Max(3).Unique()
	check(t, s, `[1, 2]`, true)
	check(t, s, `[]`, false)
	check(t, s, `[1, 2, 3, 4]`, false)
	check(t, s, `[1, 1]`, false)
	check(t, s, `[1, "x"]`, false)
	check(t, s, `"not array"`, false)
}

func TestObjectKeysRequiredOptionalUnknown(t *testing.T) {
	s := Object().Keys(K{
		"id":   Number().Integer().Required(),
		"name": String(),
	})
	check(t, s, `{"id": 1, "name": "x"}`, true)
	check(t, s, `{"id": 1}`, true)           // name optional (Joi default)
	check(t, s, `{"name": "x"}`, false)      // id required
	check(t, s, `{"id": 1, "zz": 0}`, false) // unknown key rejected
	check(t, s.Unknown(true), `{"id": 1, "zz": 0}`, true)
}

func TestForbidden(t *testing.T) {
	s := Object().Keys(K{"legacy": Forbidden(), "x": Number()})
	check(t, s, `{"x": 1}`, true)
	check(t, s, `{"legacy": 1, "x": 1}`, false)
}

func TestXorMutualExclusion(t *testing.T) {
	s := Object().Keys(K{
		"email": String(),
		"phone": String(),
	}).Xor("email", "phone")
	check(t, s, `{"email": "a@b"}`, true)
	check(t, s, `{"phone": "123"}`, true)
	check(t, s, `{}`, false)
	check(t, s, `{"email": "a@b", "phone": "123"}`, false)
}

func TestAndOrNand(t *testing.T) {
	s := Object().Keys(K{"a": Number(), "b": Number(), "c": Number()}).
		And("a", "b").Or("a", "c").Nand("b", "c")
	check(t, s, `{"a": 1, "b": 2}`, true)
	check(t, s, `{"c": 3}`, true)
	check(t, s, `{"a": 1}`, false)            // and violated
	check(t, s, `{}`, false)                  // or violated
	check(t, s, `{"a":1,"b":2,"c":3}`, false) // nand violated
}

func TestWithWithoutCooccurrence(t *testing.T) {
	s := Object().Keys(K{
		"card":    String(),
		"billing": String(),
		"guest":   Boolean(),
		"user":    String(),
	}).With("card", "billing").Without("guest", "user")
	check(t, s, `{"card": "visa", "billing": "addr"}`, true)
	check(t, s, `{"card": "visa"}`, false)
	check(t, s, `{"guest": true}`, true)
	check(t, s, `{"guest": true, "user": "bob"}`, false)
	check(t, s, `{"user": "bob"}`, true)
}

func TestAlternativesUnion(t *testing.T) {
	s := Alternatives(String(), Number().Integer())
	check(t, s, `"x"`, true)
	check(t, s, `5`, true)
	check(t, s, `5.5`, false)
	check(t, s, `true`, false)
}

func TestWhenValueDependent(t *testing.T) {
	// payload's type depends on kind: kind="text" => payload string,
	// otherwise payload number.
	s := Object().Keys(K{
		"kind":    String().Required(),
		"payload": When("kind", String().Valid("text"), String().Required(), Number().Required()),
	})
	check(t, s, `{"kind": "text", "payload": "hello"}`, true)
	check(t, s, `{"kind": "text", "payload": 5}`, false)
	check(t, s, `{"kind": "binary", "payload": 5}`, true)
	check(t, s, `{"kind": "binary", "payload": "hello"}`, false)
}

func TestWhenRequiredPropagation(t *testing.T) {
	s := Object().Keys(K{
		"kind":    String(),
		"payload": When("kind", String().Valid("a"), String().Required(), Number().Required()),
	})
	// payload required in both branches: absence fails.
	check(t, s, `{"kind": "a"}`, false)
}

func TestNestedObjects(t *testing.T) {
	s := Object().Keys(K{
		"user": Object().Keys(K{
			"name": String().Required(),
			"tags": Array().Items(String()),
		}).Required(),
	})
	check(t, s, `{"user": {"name": "x", "tags": ["a"]}}`, true)
	check(t, s, `{"user": {"tags": ["a"]}}`, false)
	check(t, s, `{}`, false)
}

func TestErrorPaths(t *testing.T) {
	s := Object().Keys(K{
		"user": Object().Keys(K{"age": Number()}),
	})
	errs := s.Validate(jsontext.MustParse(`{"user": {"age": "old"}}`))
	if len(errs) != 1 {
		t.Fatalf("errors = %v", errs)
	}
	if errs[0].Path != "user.age" {
		t.Errorf("path = %q, want user.age", errs[0].Path)
	}
	if !strings.Contains(errs[0].Error(), "user.age") {
		t.Error("Error() should include the path")
	}
}

func TestBuilderImmutability(t *testing.T) {
	base := Number()
	withMin := base.Min(5)
	check(t, base, `1`, true) // base unaffected by derived constraint
	check(t, withMin, `1`, false)
}

func TestBuilderPanicsOnKindMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("String().Items should panic")
		}
	}()
	String().Items(Number())
}

func TestObjectKeyCountBounds(t *testing.T) {
	s := Object().Unknown(true).Min(1).Max(2)
	check(t, s, `{}`, false)
	check(t, s, `{"a":1}`, true)
	check(t, s, `{"a":1,"b":2,"c":3}`, false)
}
