package joi

import (
	"sort"

	"repro/internal/jsonvalue"
	"repro/internal/typelang"
)

// Describe renders the schema as a JSON description document, mirroring
// Joi's .describe() API: a machine-readable view of the builder chain
// that tools (form generators, documentation) consume. The layout
// follows Joi's: a "type" name, "flags" (presence), "rules", "keys"
// for objects, "matches" for alternatives.
func (s *Schema) Describe() *jsonvalue.Value {
	fields := []jsonvalue.Field{
		{Name: "type", Value: jsonvalue.NewString(s.kindName())},
	}
	if s.required {
		fields = append(fields, jsonvalue.Field{
			Name:  "flags",
			Value: jsonvalue.ObjectFromPairs("presence", "required"),
		})
	}
	if len(s.valid) > 0 {
		fields = append(fields, jsonvalue.Field{
			Name:  "valid",
			Value: jsonvalue.NewArray(append([]*jsonvalue.Value(nil), s.valid...)...),
		})
	}
	if rules := s.describeRules(); rules.Len() > 0 {
		fields = append(fields, jsonvalue.Field{Name: "rules", Value: rules})
	}
	switch s.kind {
	case kObject:
		if len(s.keys) > 0 {
			names := make([]string, 0, len(s.keys))
			for n := range s.keys {
				names = append(names, n)
			}
			sort.Strings(names)
			keyFields := make([]jsonvalue.Field, 0, len(names))
			for _, n := range names {
				keyFields = append(keyFields, jsonvalue.Field{Name: n, Value: s.keys[n].Describe()})
			}
			fields = append(fields, jsonvalue.Field{Name: "keys", Value: jsonvalue.NewObject(keyFields...)})
		}
		deps := s.describeDependencies()
		if deps.Len() > 0 {
			fields = append(fields, jsonvalue.Field{Name: "dependencies", Value: deps})
		}
	case kArray:
		if s.items != nil {
			fields = append(fields, jsonvalue.Field{Name: "items", Value: s.items.Describe()})
		}
	case kAlternatives:
		alts := make([]*jsonvalue.Value, len(s.alts))
		for i, a := range s.alts {
			alts[i] = a.Describe()
		}
		fields = append(fields, jsonvalue.Field{Name: "matches", Value: jsonvalue.NewArray(alts...)})
	case kWhen:
		fields = append(fields, jsonvalue.Field{Name: "ref", Value: jsonvalue.NewString(s.whenRef)})
		if s.whenIs != nil {
			fields = append(fields, jsonvalue.Field{Name: "is", Value: s.whenIs.Describe()})
		}
		if s.whenThen != nil {
			fields = append(fields, jsonvalue.Field{Name: "then", Value: s.whenThen.Describe()})
		}
		if s.whenOtherwise != nil {
			fields = append(fields, jsonvalue.Field{Name: "otherwise", Value: s.whenOtherwise.Describe()})
		}
	}
	return jsonvalue.NewObject(fields...)
}

func (s *Schema) describeRules() *jsonvalue.Value {
	var rules []*jsonvalue.Value
	rule := func(name string, args ...any) {
		fields := []jsonvalue.Field{{Name: "name", Value: jsonvalue.NewString(name)}}
		if len(args) == 1 {
			fields = append(fields, jsonvalue.Field{Name: "args", Value: jsonvalue.FromGo(args[0])})
		}
		rules = append(rules, jsonvalue.NewObject(fields...))
	}
	if s.integer {
		rule("integer")
	}
	if s.positive {
		rule("positive")
	}
	if s.hasMin {
		rule("min", s.min)
	}
	if s.hasMax {
		rule("max", s.max)
	}
	if s.minLen >= 0 {
		rule("min", s.minLen)
	}
	if s.maxLen >= 0 {
		rule("max", s.maxLen)
	}
	if s.pattern != nil {
		rule("pattern", s.pattern.String())
	}
	if s.minItems >= 0 {
		rule("min", s.minItems)
	}
	if s.maxItems >= 0 {
		rule("max", s.maxItems)
	}
	if s.unique {
		rule("unique")
	}
	return jsonvalue.NewArray(rules...)
}

func (s *Schema) describeDependencies() *jsonvalue.Value {
	var deps []*jsonvalue.Value
	add := func(rel string, peers []string) {
		ps := make([]*jsonvalue.Value, len(peers))
		for i, p := range peers {
			ps[i] = jsonvalue.NewString(p)
		}
		deps = append(deps, jsonvalue.ObjectFromPairs(
			"rel", rel,
			"peers", jsonvalue.NewArray(ps...),
		))
	}
	for _, g := range s.andPeers {
		add("and", g)
	}
	for _, g := range s.orPeers {
		add("or", g)
	}
	for _, g := range s.xorPeers {
		add("xor", g)
	}
	for _, g := range s.nandPeers {
		add("nand", g)
	}
	keys := make([]string, 0, len(s.withPeers))
	for k := range s.withPeers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		add("with:"+k, s.withPeers[k])
	}
	keys = keys[:0]
	for k := range s.withoutPeers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		add("without:"+k, s.withoutPeers[k])
	}
	return jsonvalue.NewArray(deps...)
}

// ToType converts the Joi schema into the shared type algebra, best
// effort — the §2 → §3 bridge for the third schema language. Peer
// constraints (xor/with/without) and value constraints (min/max,
// patterns, valid lists) have no type-algebra counterpart and are
// dropped, so the result over-approximates: every document the Joi
// schema accepts inhabits the returned type.
func (s *Schema) ToType() *typelang.Type {
	switch s.kind {
	case kAny:
		return typelang.Any
	case kForbidden:
		return typelang.Bottom
	case kNull:
		return typelang.Null
	case kBool:
		return typelang.Bool
	case kNumber:
		if s.integer {
			return typelang.Int
		}
		return typelang.Num
	case kString:
		return typelang.Str
	case kArray:
		if s.items == nil {
			return typelang.NewArray(typelang.Any)
		}
		return typelang.NewArray(s.items.ToType())
	case kObject:
		names := make([]string, 0, len(s.keys))
		for n := range s.keys {
			names = append(names, n)
		}
		sort.Strings(names)
		fields := make([]typelang.Field, 0, len(names))
		for _, n := range names {
			sub := s.keys[n]
			if sub.kind == kForbidden {
				continue
			}
			fields = append(fields, typelang.Field{
				Name:     n,
				Type:     sub.ToType(),
				Optional: !sub.isRequiredForType(),
			})
		}
		if s.unknown {
			// Open objects cannot be a closed record; Any is the only
			// sound over-approximation the algebra offers.
			return typelang.Any
		}
		return typelang.NewRecord(fields...)
	case kAlternatives:
		alts := make([]*typelang.Type, len(s.alts))
		for i, a := range s.alts {
			alts[i] = a.ToType()
		}
		return typelang.Union(alts...)
	case kWhen:
		// Without the sibling context the type is the union of both
		// branches (absent branches contribute Any).
		branch := func(b *Schema) *typelang.Type {
			if b == nil {
				return typelang.Any
			}
			return b.ToType()
		}
		return typelang.Union(branch(s.whenThen), branch(s.whenOtherwise))
	default:
		return typelang.Any
	}
}

// isRequiredForType approximates requiredness for the type conversion:
// a when-schema is required only when both branches are (otherwise some
// context admits absence).
func (s *Schema) isRequiredForType() bool {
	if s.kind == kWhen {
		then := s.whenThen != nil && s.whenThen.isRequiredForType()
		other := s.whenOtherwise != nil && s.whenOtherwise.isRequiredForType()
		return then && other
	}
	return s.required
}
