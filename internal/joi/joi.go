// Package joi reimplements the schema style of Walmart Labs' Joi
// library ([6] in the tutorial): schemas for JSON objects built by
// chained function calls inside the host language, validating data in
// an otherwise untyped setting. The tutorial highlights exactly the
// features modelled here: "the ability to specify co-occurrence and
// mutual exclusion constraints on fields, as well as union and
// value-dependent types".
//
// The builder API mirrors Joi's JavaScript one:
//
//	schema := joi.Object().Keys(joi.K{
//	    "username": joi.String().Min(3).Required(),
//	    "age":      joi.Number().Integer().Min(0),
//	    "payload":  joi.When("kind", joi.String().Valid("a"), joi.String(), joi.Number()),
//	}).Xor("email", "phone").With("card", "billing").Without("guest", "password")
//
// As in Joi, fields are optional unless marked Required, and unknown
// object keys are rejected unless Unknown(true).
package joi

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"repro/internal/jsonvalue"
)

// kind discriminates schema nodes.
type kind uint8

const (
	kAny kind = iota
	kNull
	kBool
	kNumber
	kString
	kArray
	kObject
	kAlternatives
	kWhen
	kForbidden
)

// K is the key→schema map accepted by Object().Keys.
type K map[string]*Schema

// Schema is an immutable Joi-style schema node; builder methods return
// modified copies, so schemas can be shared and extended safely.
type Schema struct {
	kind     kind
	required bool

	// number
	integer  bool
	hasMin   bool
	min      float64
	hasMax   bool
	max      float64
	positive bool

	// string
	minLen  int // -1 unset
	maxLen  int
	pattern *regexp.Regexp

	// any
	valid []*jsonvalue.Value // allow-list (Joi .valid())

	// array
	items    *Schema
	minItems int // -1 unset
	maxItems int
	unique   bool

	// object
	keys         map[string]*Schema
	unknown      bool
	andPeers     [][]string
	orPeers      [][]string
	xorPeers     [][]string
	nandPeers    [][]string
	withPeers    map[string][]string
	withoutPeers map[string][]string

	// alternatives
	alts []*Schema

	// when
	whenRef       string
	whenIs        *Schema
	whenThen      *Schema
	whenOtherwise *Schema
}

func (s *Schema) clone() *Schema {
	c := *s
	return &c
}

// Any matches every value.
func Any() *Schema { return &Schema{kind: kAny, minLen: -1, minItems: -1, maxLen: -1, maxItems: -1} }

// Null matches JSON null only.
func Null() *Schema { s := Any(); s.kind = kNull; return s }

// Boolean matches booleans.
func Boolean() *Schema { s := Any(); s.kind = kBool; return s }

// Number matches numbers.
func Number() *Schema { s := Any(); s.kind = kNumber; return s }

// String matches strings.
func String() *Schema { s := Any(); s.kind = kString; return s }

// Array matches arrays.
func Array() *Schema { s := Any(); s.kind = kArray; return s }

// Object matches objects.
func Object() *Schema { s := Any(); s.kind = kObject; return s }

// Forbidden matches only absence; a present value fails (Joi's
// .forbidden()).
func Forbidden() *Schema { s := Any(); s.kind = kForbidden; return s }

// Alternatives matches any of the given schemas — Joi's union types.
func Alternatives(alts ...*Schema) *Schema {
	s := Any()
	s.kind = kAlternatives
	s.alts = alts
	return s
}

// When builds a value-dependent schema: if the sibling field ref (in
// the enclosing object) matches is, the value must satisfy then,
// otherwise otherwise. Mirrors Joi.when(ref, {is, then, otherwise}).
func When(ref string, is, then, otherwise *Schema) *Schema {
	s := Any()
	s.kind = kWhen
	s.whenRef = ref
	s.whenIs = is
	s.whenThen = then
	s.whenOtherwise = otherwise
	return s
}

// Required marks the value as mandatory when used as an object key.
func (s *Schema) Required() *Schema {
	c := s.clone()
	c.required = true
	return c
}

// Valid restricts the value to the given allow-list (Joi .valid()).
func (s *Schema) Valid(vals ...any) *Schema {
	c := s.clone()
	for _, v := range vals {
		c.valid = append(c.valid, jsonvalue.FromGo(v))
	}
	return c
}

// Integer requires an integral number.
func (s *Schema) Integer() *Schema {
	s.mustBe(kNumber, "Integer")
	c := s.clone()
	c.integer = true
	return c
}

// Positive requires > 0.
func (s *Schema) Positive() *Schema {
	s.mustBe(kNumber, "Positive")
	c := s.clone()
	c.positive = true
	return c
}

// Min sets the numeric minimum, string minimum length, array minimum
// length, or object minimum key count depending on the schema kind.
func (s *Schema) Min(n float64) *Schema {
	c := s.clone()
	switch s.kind {
	case kNumber:
		c.hasMin, c.min = true, n
	case kString:
		c.minLen = int(n)
	case kArray, kObject:
		c.minItems = int(n)
	default:
		panic("joi: Min on " + s.kindName())
	}
	return c
}

// Max sets the numeric maximum or length maximum, as Min.
func (s *Schema) Max(n float64) *Schema {
	c := s.clone()
	switch s.kind {
	case kNumber:
		c.hasMax, c.max = true, n
	case kString:
		c.maxLen = int(n)
	case kArray, kObject:
		c.maxItems = int(n)
	default:
		panic("joi: Max on " + s.kindName())
	}
	return c
}

// Pattern constrains strings by a regular expression.
func (s *Schema) Pattern(re string) *Schema {
	s.mustBe(kString, "Pattern")
	c := s.clone()
	c.pattern = regexp.MustCompile(re)
	return c
}

// Items sets the array element schema.
func (s *Schema) Items(item *Schema) *Schema {
	s.mustBe(kArray, "Items")
	c := s.clone()
	c.items = item
	return c
}

// Unique requires array elements to be pairwise distinct.
func (s *Schema) Unique() *Schema {
	s.mustBe(kArray, "Unique")
	c := s.clone()
	c.unique = true
	return c
}

// Keys declares the object's fields.
func (s *Schema) Keys(keys K) *Schema {
	s.mustBe(kObject, "Keys")
	c := s.clone()
	c.keys = make(map[string]*Schema, len(keys))
	for k, v := range keys {
		c.keys[k] = v
	}
	return c
}

// Unknown allows (true) or rejects (false, default) unknown keys.
func (s *Schema) Unknown(allow bool) *Schema {
	s.mustBe(kObject, "Unknown")
	c := s.clone()
	c.unknown = allow
	return c
}

// And requires the peers to appear all together or not at all.
func (s *Schema) And(peers ...string) *Schema {
	s.mustBe(kObject, "And")
	c := s.clone()
	c.andPeers = append(append([][]string{}, s.andPeers...), peers)
	return c
}

// Or requires at least one of the peers.
func (s *Schema) Or(peers ...string) *Schema {
	s.mustBe(kObject, "Or")
	c := s.clone()
	c.orPeers = append(append([][]string{}, s.orPeers...), peers)
	return c
}

// Xor requires exactly one of the peers — Joi's mutual exclusion.
func (s *Schema) Xor(peers ...string) *Schema {
	s.mustBe(kObject, "Xor")
	c := s.clone()
	c.xorPeers = append(append([][]string{}, s.xorPeers...), peers)
	return c
}

// Nand forbids all peers from appearing together.
func (s *Schema) Nand(peers ...string) *Schema {
	s.mustBe(kObject, "Nand")
	c := s.clone()
	c.nandPeers = append(append([][]string{}, s.nandPeers...), peers)
	return c
}

// With requires deps whenever key is present — co-occurrence.
func (s *Schema) With(key string, deps ...string) *Schema {
	s.mustBe(kObject, "With")
	c := s.clone()
	c.withPeers = copyPeerMap(s.withPeers)
	c.withPeers[key] = append(c.withPeers[key], deps...)
	return c
}

// Without forbids deps whenever key is present — exclusion.
func (s *Schema) Without(key string, deps ...string) *Schema {
	s.mustBe(kObject, "Without")
	c := s.clone()
	c.withoutPeers = copyPeerMap(s.withoutPeers)
	c.withoutPeers[key] = append(c.withoutPeers[key], deps...)
	return c
}

func copyPeerMap(m map[string][]string) map[string][]string {
	out := make(map[string][]string, len(m)+1)
	for k, v := range m {
		out[k] = append([]string(nil), v...)
	}
	return out
}

func (s *Schema) mustBe(k kind, method string) {
	if s.kind != k {
		panic(fmt.Sprintf("joi: %s on %s schema", method, s.kindName()))
	}
}

func (s *Schema) kindName() string {
	switch s.kind {
	case kAny:
		return "any"
	case kNull:
		return "null"
	case kBool:
		return "boolean"
	case kNumber:
		return "number"
	case kString:
		return "string"
	case kArray:
		return "array"
	case kObject:
		return "object"
	case kAlternatives:
		return "alternatives"
	case kWhen:
		return "when"
	case kForbidden:
		return "forbidden"
	default:
		return "?"
	}
}

// Error is one validation failure.
type Error struct {
	Path    string
	Message string
}

func (e Error) Error() string {
	where := e.Path
	if where == "" {
		where = "(root)"
	}
	return where + ": " + e.Message
}

// Validate checks v and returns every violation found.
func (s *Schema) Validate(v *jsonvalue.Value) []Error {
	var errs []Error
	s.validate(v, nil, "", &errs)
	return errs
}

// Accepts reports whether the value validates.
func (s *Schema) Accepts(v *jsonvalue.Value) bool { return len(s.Validate(v)) == 0 }

// validate walks the value. ctx is the nearest enclosing object, used
// by When references.
func (s *Schema) validate(v *jsonvalue.Value, ctx *jsonvalue.Value, path string, errs *[]Error) {
	addf := func(format string, args ...any) {
		*errs = append(*errs, Error{Path: path, Message: fmt.Sprintf(format, args...)})
	}
	if len(s.valid) > 0 {
		ok := false
		for _, allowed := range s.valid {
			if jsonvalue.Equal(allowed, v) {
				ok = true
				break
			}
		}
		if !ok {
			addf("value not in valid() allow-list")
			return
		}
	}
	switch s.kind {
	case kAny:
		return
	case kForbidden:
		addf("value is forbidden")
	case kNull:
		if v.Kind() != jsonvalue.Null {
			addf("must be null")
		}
	case kBool:
		if v.Kind() != jsonvalue.Bool {
			addf("must be a boolean")
		}
	case kNumber:
		s.validateNumber(v, addf)
	case kString:
		s.validateString(v, addf)
	case kArray:
		s.validateArray(v, ctx, path, errs, addf)
	case kObject:
		s.validateObject(v, path, errs, addf)
	case kAlternatives:
		for _, alt := range s.alts {
			var altErrs []Error
			alt.validate(v, ctx, path, &altErrs)
			if len(altErrs) == 0 {
				return
			}
		}
		addf("value matches none of %d alternatives", len(s.alts))
	case kWhen:
		s.resolveWhen(ctx).validate(v, ctx, path, errs)
	}
}

func (s *Schema) resolveWhen(ctx *jsonvalue.Value) *Schema {
	branch := s.whenOtherwise
	if ctx != nil {
		if ref, ok := ctx.Get(s.whenRef); ok && s.whenIs.Accepts(ref) {
			branch = s.whenThen
		}
	}
	if branch == nil {
		return Any()
	}
	return branch
}

func (s *Schema) validateNumber(v *jsonvalue.Value, addf func(string, ...any)) {
	if v.Kind() != jsonvalue.Number {
		addf("must be a number")
		return
	}
	n := v.Num()
	if s.integer && !v.IsInt() {
		addf("must be an integer")
	}
	if s.positive && n <= 0 {
		addf("must be positive")
	}
	if s.hasMin && n < s.min {
		addf("must be >= %v", s.min)
	}
	if s.hasMax && n > s.max {
		addf("must be <= %v", s.max)
	}
}

func (s *Schema) validateString(v *jsonvalue.Value, addf func(string, ...any)) {
	if v.Kind() != jsonvalue.String {
		addf("must be a string")
		return
	}
	str := v.Str()
	n := len([]rune(str))
	if s.minLen >= 0 && n < s.minLen {
		addf("length must be >= %d", s.minLen)
	}
	if s.maxLen >= 0 && n > s.maxLen {
		addf("length must be <= %d", s.maxLen)
	}
	if s.pattern != nil && !s.pattern.MatchString(str) {
		addf("must match pattern %q", s.pattern)
	}
}

func (s *Schema) validateArray(v *jsonvalue.Value, ctx *jsonvalue.Value, path string, errs *[]Error, addf func(string, ...any)) {
	if v.Kind() != jsonvalue.Array {
		addf("must be an array")
		return
	}
	elems := v.Elems()
	if s.minItems >= 0 && len(elems) < s.minItems {
		addf("must have >= %d items", s.minItems)
	}
	if s.maxItems >= 0 && len(elems) > s.maxItems {
		addf("must have <= %d items", s.maxItems)
	}
	if s.unique {
		for i := 0; i < len(elems); i++ {
			for j := i + 1; j < len(elems); j++ {
				if jsonvalue.Equal(elems[i], elems[j]) {
					addf("items %d and %d are duplicates", i, j)
					i = len(elems)
					break
				}
			}
		}
	}
	if s.items != nil {
		for i, e := range elems {
			s.items.validate(e, ctx, fmt.Sprintf("%s[%d]", path, i), errs)
		}
	}
}

func (s *Schema) validateObject(v *jsonvalue.Value, path string, errs *[]Error, addf func(string, ...any)) {
	if v.Kind() != jsonvalue.Object {
		addf("must be an object")
		return
	}
	names := make([]string, 0, len(s.keys))
	for name := range s.keys {
		names = append(names, name)
	}
	sort.Strings(names)
	fieldCount := 0
	seen := map[string]struct{}{}
	for _, f := range v.Fields() {
		if _, dup := seen[f.Name]; !dup {
			seen[f.Name] = struct{}{}
			fieldCount++
		}
	}
	if s.minItems >= 0 && fieldCount < s.minItems {
		addf("must have >= %d keys", s.minItems)
	}
	if s.maxItems >= 0 && fieldCount > s.maxItems {
		addf("must have <= %d keys", s.maxItems)
	}
	for _, name := range names {
		sub := s.keys[name]
		// Value-dependent schemas resolve against the enclosing object
		// before requiredness and forbidden-ness are judged.
		eff := sub
		for eff.kind == kWhen {
			eff = eff.resolveWhen(v)
		}
		fv, present := v.Get(name)
		if !present {
			if eff.required {
				addf("missing required key %q", name)
			}
			continue
		}
		if eff.kind == kForbidden {
			*errs = append(*errs, Error{Path: joinPath(path, name), Message: "key is forbidden"})
			continue
		}
		eff.validate(fv, v, joinPath(path, name), errs)
	}
	if !s.unknown {
		for name := range seen {
			if _, known := s.keys[name]; !known {
				addf("unknown key %q", name)
			}
		}
	}
	present := func(name string) bool { return v.Has(name) }
	for _, group := range s.andPeers {
		n := countPresent(group, present)
		if n != 0 && n != len(group) {
			addf("and(%s): all or none must be present", strings.Join(group, ", "))
		}
	}
	for _, group := range s.orPeers {
		if countPresent(group, present) == 0 {
			addf("or(%s): at least one must be present", strings.Join(group, ", "))
		}
	}
	for _, group := range s.xorPeers {
		if n := countPresent(group, present); n != 1 {
			addf("xor(%s): exactly one must be present, found %d", strings.Join(group, ", "), n)
		}
	}
	for _, group := range s.nandPeers {
		if countPresent(group, present) == len(group) {
			addf("nand(%s): must not all be present", strings.Join(group, ", "))
		}
	}
	for key, deps := range s.withPeers {
		if present(key) {
			for _, dep := range deps {
				if !present(dep) {
					addf("with(%s): requires %q", key, dep)
				}
			}
		}
	}
	for key, deps := range s.withoutPeers {
		if present(key) {
			for _, dep := range deps {
				if present(dep) {
					addf("without(%s): conflicts with %q", key, dep)
				}
			}
		}
	}
}

func countPresent(names []string, present func(string) bool) int {
	n := 0
	for _, name := range names {
		if present(name) {
			n++
		}
	}
	return n
}

func joinPath(base, key string) string {
	if base == "" {
		return key
	}
	return base + "." + key
}
