package sparkinfer

import (
	"testing"

	"repro/internal/genjson"
	"repro/internal/infer"
	"repro/internal/jsontext"
	"repro/internal/typelang"
)

func TestInferValueAtoms(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{`null`, "null"},
		{`true`, "boolean"},
		{`1`, "bigint"},
		{`1.5`, "double"},
		{`"x"`, "string"},
		{`[1,2]`, "array<bigint>"},
		{`{"b":1,"a":"x"}`, "struct<a:string,b:bigint>"}, // fields sorted
	}
	for _, c := range cases {
		got := InferValue(jsontext.MustParse(c.in)).String()
		if got != c.want {
			t.Errorf("InferValue(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestCompatibleTypeWidening(t *testing.T) {
	if got := CompatibleType(longT, doubleT); got.Kind != DoubleType {
		t.Errorf("long+double = %v", got)
	}
	if got := CompatibleType(nullT, boolT); got.Kind != BooleanType {
		t.Errorf("null identity failed: %v", got)
	}
}

func TestCompatibleTypeStringFallback(t *testing.T) {
	// The defining behaviour: incompatible types collapse to string.
	cases := [][2]string{
		{`1`, `"x"`},
		{`true`, `1`},
		{`{"a":1}`, `[1]`},
		{`{"a":1}`, `1`},
		{`[1]`, `"s"`},
	}
	for _, c := range cases {
		a, b := InferValue(jsontext.MustParse(c[0])), InferValue(jsontext.MustParse(c[1]))
		if got := CompatibleType(a, b); got.Kind != StringType {
			t.Errorf("CompatibleType(%s, %s) = %v, want string", c[0], c[1], got)
		}
	}
}

func TestStructMergeAddsNullableColumns(t *testing.T) {
	a := InferValue(jsontext.MustParse(`{"a":1,"b":"x"}`))
	b := InferValue(jsontext.MustParse(`{"a":2,"c":true}`))
	m := CompatibleType(a, b)
	if got := m.String(); got != "struct<a:bigint,b:string,c:boolean>" {
		t.Errorf("struct merge = %s", got)
	}
	for _, f := range m.Fields {
		if !f.Nullable {
			t.Errorf("field %s should be nullable", f.Name)
		}
	}
}

func TestNestedArrayElementMerge(t *testing.T) {
	docs := []string{`{"xs":[{"a":1}]}`, `{"xs":[{"b":"s"}]}`}
	a := InferValue(jsontext.MustParse(docs[0]))
	b := InferValue(jsontext.MustParse(docs[1]))
	m := CompatibleType(a, b)
	if got := m.String(); got != "struct<xs:array<struct<a:bigint,b:string>>>" {
		t.Errorf("nested merge = %s", got)
	}
}

func TestInferFoldMatchesPairwise(t *testing.T) {
	docs := genjson.Collection(genjson.Twitter{Seed: 3}, 100)
	got := Infer(docs)
	acc := InferValue(docs[0])
	for _, d := range docs[1:] {
		acc = CompatibleType(acc, InferValue(d))
	}
	if !Equal(got, acc) {
		t.Error("Infer differs from manual fold")
	}
}

func TestDriftCollapsesToString(t *testing.T) {
	// On a type-drifting collection, drifting columns must become
	// string — the tutorial's imprecision claim.
	docs := genjson.Collection(genjson.TypeDrift{Seed: 7, NumFields: 6, DriftFields: 2}, 200)
	ty := Infer(docs)
	if ty.Kind != StructType {
		t.Fatalf("inferred %v", ty)
	}
	byName := map[string]*DataType{}
	for _, f := range ty.Fields {
		byName[f.Name] = f.Type
	}
	if byName["f00"].Kind != StringType || byName["f01"].Kind != StringType {
		t.Errorf("drifting fields should collapse to string: f00=%v f01=%v", byName["f00"], byName["f01"])
	}
	if byName["f05"].Kind != LongType {
		t.Errorf("stable field should stay bigint: %v", byName["f05"])
	}
}

func TestPrecisionGapVersusParametric(t *testing.T) {
	// E2's claim in miniature: parametric inference is strictly more
	// precise than the Spark schema on heterogeneous data.
	docs := genjson.Collection(genjson.TypeDrift{Seed: 11}, 300)
	spark := Infer(docs).ToTypelang()
	param := infer.Infer(docs, infer.Options{Equiv: typelang.EquivLabel})
	ps := typelang.Precision(spark, docs)
	pp := typelang.Precision(param, docs)
	if !(pp > ps) {
		t.Errorf("precision: parametric %.3f should exceed spark %.3f", pp, ps)
	}
}

func TestToTypelangNullability(t *testing.T) {
	if ty := Infer(nil); ty.Kind != NullType {
		t.Errorf("empty collection should infer NullType, got %v", ty)
	}
	d := InferValue(jsontext.MustParse(`{"a":1}`))
	tl := d.ToTypelang()
	if tl.Kind != typelang.KRecord {
		t.Fatalf("got %v", tl)
	}
	fa, _ := tl.Get("a")
	if !fa.Optional {
		t.Error("spark columns are nullable, expected optional field")
	}
	if !fa.Type.Matches(jsontext.MustParse(`null`)) {
		t.Error("nullable column should admit null")
	}
}

func TestSize(t *testing.T) {
	d := InferValue(jsontext.MustParse(`{"a":1,"b":[true]}`))
	// struct(1) + a(1)+bigint(1) + b(1)+array(1)+bool(1) = 6
	if got := d.Size(); got != 6 {
		t.Errorf("Size = %d, want 6", got)
	}
}
