// Package sparkinfer reimplements the schema extraction that Spark SQL
// applies to JSON datasets (the "Spark Dataframe schema extraction" of
// §4.1) — the tutorial's canonical example of an imprecise inference:
// "its inference approach is quite imprecise, since the type language
// lacks union types and the inference algorithm resorts to Str on
// strongly heterogeneous collections of data".
//
// The port follows Spark's JsonInferSchema/TypeCoercion semantics:
//
//   - atomic types: NullType, BooleanType, LongType, DoubleType,
//     StringType;
//   - StructType with name-sorted, nullable fields and ArrayType with a
//     single element type;
//   - compatibleType (the fold operator) merges two types: equal types
//     stay, Long+Double widens to Double, structs merge field-wise with
//     missing fields nullable, arrays merge element-wise, NullType is
//     the identity — and ANY other combination falls back to
//     StringType.
//
// The fallback is the whole point: there is no union constructor, so a
// field that is sometimes a number and sometimes a record becomes a
// plain string column.
package sparkinfer

import (
	"sort"
	"strings"

	"repro/internal/jsonvalue"
	"repro/internal/typelang"
)

// TypeKind enumerates Spark SQL data types used for JSON inference.
type TypeKind uint8

// The Spark type kinds.
const (
	NullType TypeKind = iota
	BooleanType
	LongType
	DoubleType
	StringType
	StructType
	ArrayType
)

// String renders the kind with Spark's names.
func (k TypeKind) String() string {
	switch k {
	case NullType:
		return "NullType"
	case BooleanType:
		return "BooleanType"
	case LongType:
		return "LongType"
	case DoubleType:
		return "DoubleType"
	case StringType:
		return "StringType"
	case StructType:
		return "StructType"
	case ArrayType:
		return "ArrayType"
	default:
		return "?"
	}
}

// StructField is one column of a struct.
type StructField struct {
	Name     string
	Type     *DataType
	Nullable bool
}

// DataType is a Spark SQL type tree.
type DataType struct {
	Kind   TypeKind
	Fields []StructField // StructType, sorted by name
	Elem   *DataType     // ArrayType
}

var (
	nullT   = &DataType{Kind: NullType}
	boolT   = &DataType{Kind: BooleanType}
	longT   = &DataType{Kind: LongType}
	doubleT = &DataType{Kind: DoubleType}
	stringT = &DataType{Kind: StringType}
)

// InferValue types a single JSON value as Spark's inferField does.
func InferValue(v *jsonvalue.Value) *DataType {
	switch v.Kind() {
	case jsonvalue.Null:
		return nullT
	case jsonvalue.Bool:
		return boolT
	case jsonvalue.Number:
		if v.IsInt() {
			return longT
		}
		return doubleT
	case jsonvalue.String:
		return stringT
	case jsonvalue.Array:
		elem := nullT
		for _, e := range v.Elems() {
			elem = CompatibleType(elem, InferValue(e))
		}
		return &DataType{Kind: ArrayType, Elem: elem}
	case jsonvalue.Object:
		seen := make(map[string]struct{}, v.Len())
		fields := make([]StructField, 0, v.Len())
		for _, f := range v.Fields() {
			if _, dup := seen[f.Name]; dup {
				continue
			}
			seen[f.Name] = struct{}{}
			fv, _ := v.Get(f.Name)
			fields = append(fields, StructField{Name: f.Name, Type: InferValue(fv), Nullable: true})
		}
		sort.Slice(fields, func(i, j int) bool { return fields[i].Name < fields[j].Name })
		return &DataType{Kind: StructType, Fields: fields}
	default:
		return nullT
	}
}

// CompatibleType is Spark's two-type merge: the fold operator of the
// schema extraction. Incompatible combinations collapse to StringType.
func CompatibleType(t1, t2 *DataType) *DataType {
	if t1.Kind == NullType {
		return t2
	}
	if t2.Kind == NullType {
		return t1
	}
	if Equal(t1, t2) {
		return t1
	}
	switch {
	case t1.Kind == LongType && t2.Kind == DoubleType,
		t1.Kind == DoubleType && t2.Kind == LongType:
		return doubleT
	case t1.Kind == StructType && t2.Kind == StructType:
		return mergeStructs(t1, t2)
	case t1.Kind == ArrayType && t2.Kind == ArrayType:
		return &DataType{Kind: ArrayType, Elem: CompatibleType(t1.Elem, t2.Elem)}
	default:
		// No union types: fall back to strings.
		return stringT
	}
}

func mergeStructs(a, b *DataType) *DataType {
	out := make([]StructField, 0, len(a.Fields)+len(b.Fields))
	i, j := 0, 0
	for i < len(a.Fields) && j < len(b.Fields) {
		switch {
		case a.Fields[i].Name == b.Fields[j].Name:
			out = append(out, StructField{
				Name:     a.Fields[i].Name,
				Type:     CompatibleType(a.Fields[i].Type, b.Fields[j].Type),
				Nullable: true,
			})
			i++
			j++
		case a.Fields[i].Name < b.Fields[j].Name:
			out = append(out, a.Fields[i])
			i++
		default:
			out = append(out, b.Fields[j])
			j++
		}
	}
	out = append(out, a.Fields[i:]...)
	out = append(out, b.Fields[j:]...)
	return &DataType{Kind: StructType, Fields: out}
}

// Infer folds CompatibleType over the collection, exactly as the
// Dataframe reader does over an RDD of parsed rows.
func Infer(docs []*jsonvalue.Value) *DataType {
	acc := nullT
	for _, d := range docs {
		acc = CompatibleType(acc, InferValue(d))
	}
	return acc
}

// Equal reports structural equality of Spark types.
func Equal(a, b *DataType) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case StructType:
		if len(a.Fields) != len(b.Fields) {
			return false
		}
		for i := range a.Fields {
			if a.Fields[i].Name != b.Fields[i].Name || !Equal(a.Fields[i].Type, b.Fields[i].Type) {
				return false
			}
		}
		return true
	case ArrayType:
		return Equal(a.Elem, b.Elem)
	default:
		return true
	}
}

// String renders the type in Spark's DDL-ish notation.
func (t *DataType) String() string {
	var b strings.Builder
	t.render(&b)
	return b.String()
}

func (t *DataType) render(b *strings.Builder) {
	switch t.Kind {
	case StructType:
		b.WriteString("struct<")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(f.Name)
			b.WriteByte(':')
			f.Type.render(b)
		}
		b.WriteByte('>')
	case ArrayType:
		b.WriteString("array<")
		t.Elem.render(b)
		b.WriteByte('>')
	case NullType:
		b.WriteString("null")
	case BooleanType:
		b.WriteString("boolean")
	case LongType:
		b.WriteString("bigint")
	case DoubleType:
		b.WriteString("double")
	case StringType:
		b.WriteString("string")
	}
}

// Size counts nodes (fields count as one each), comparable with
// typelang.Type.Size.
func (t *DataType) Size() int {
	switch t.Kind {
	case StructType:
		n := 1
		for _, f := range t.Fields {
			n += 1 + f.Type.Size()
		}
		return n
	case ArrayType:
		return 1 + t.Elem.Size()
	default:
		return 1
	}
}

// ToTypelang converts a Spark type into the shared type algebra so the
// precision metric can compare it with parametric inference (E2).
// Nullable columns become T + Null unions; StringType stays Str — which
// is exactly where the precision loss shows up.
func (t *DataType) ToTypelang() *typelang.Type {
	switch t.Kind {
	case NullType:
		return typelang.Null
	case BooleanType:
		return typelang.Bool
	case LongType:
		return typelang.Int
	case DoubleType:
		return typelang.Num
	case StringType:
		return typelang.Str
	case ArrayType:
		return typelang.NewArray(t.Elem.ToTypelang())
	case StructType:
		fields := make([]typelang.Field, 0, len(t.Fields))
		for _, f := range t.Fields {
			ft := f.Type.ToTypelang()
			if f.Nullable {
				ft = typelang.Union(ft, typelang.Null)
			}
			fields = append(fields, typelang.Field{
				Name:     f.Name,
				Type:     ft,
				Optional: f.Nullable,
			})
		}
		return typelang.NewRecord(fields...)
	default:
		return typelang.Bottom
	}
}
