// Command jstranslate converts an NDJSON collection into the
// schema-driven formats of §5: the Avro-like row binary or the
// Parquet-like columnar blob. It infers the schema (parametric-L),
// writes the output file, and reports the size ratio against the raw
// JSON. With -verify it decodes the output back and checks equality.
//
// Usage:
//
//	jstranslate -format rows|columnar -out data.bin [-verify] [data.ndjson ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
)

func main() {
	format := flag.String("format", "columnar", "target format: rows or columnar")
	out := flag.String("out", "", "output file (required)")
	verify := flag.Bool("verify", false, "decode the output back and compare")
	flag.Parse()

	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}
	docs, err := readInput(flag.Args())
	if err != nil {
		fatal(err)
	}
	if len(docs) == 0 {
		fatal(fmt.Errorf("no input documents"))
	}
	tr, err := core.Translate(docs)
	if err != nil {
		fatal(err)
	}
	var payload []byte
	switch *format {
	case "rows":
		payload = tr.RowBinary
	case "columnar":
		payload = tr.Columnar
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("schema:   %s\n", tr.Schema)
	fmt.Printf("raw json: %d bytes\n", len(tr.RawJSON))
	fmt.Printf("%s: %d bytes (%.2fx)\n", *format, len(payload),
		float64(len(payload))/float64(len(tr.RawJSON)))

	if *verify {
		var back []*jsonvalue.Value
		if *format == "rows" {
			back, err = core.RestoreRows(tr)
		} else {
			back, err = core.RestoreColumnar(tr)
		}
		if err != nil {
			fatal(fmt.Errorf("verify: %w", err))
		}
		for i := range docs {
			if !jsonvalue.Equal(docs[i], back[i]) {
				fatal(fmt.Errorf("verify: doc %d does not round-trip", i))
			}
		}
		fmt.Printf("verify:   %d documents round-trip exactly\n", len(docs))
	}
}

func readInput(files []string) ([]*jsonvalue.Value, error) {
	if len(files) == 0 {
		return jsontext.NewDecoder(os.Stdin).DecodeAll()
	}
	var docs []*jsonvalue.Value
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		part, err := jsontext.NewDecoder(f).DecodeAll()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		docs = append(docs, part...)
	}
	return docs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jstranslate:", err)
	os.Exit(1)
}
