// Command jsbench regenerates every experiment table of DESIGN.md's
// experiment index (E1–E14) and prints them — the harness behind
// EXPERIMENTS.md. Run a subset with -only (comma-separated IDs).
//
// Usage:
//
//	jsbench [-only E1,E6,E10] [-cpuprofile f] [-memprofile f]
//
// -cpuprofile and -memprofile write pprof profiles covering the
// selected experiments (the heap profile is taken after they finish),
// so hot paths — the absorption walkers in particular — are
// profileable under realistic experiment workloads without editing
// benchmark code: `go tool pprof jsbench cpu.out`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the runs) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jsbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "jsbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jsbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "jsbench:", err)
				os.Exit(1)
			}
		}()
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	runners := map[string]func() *experiments.Table{
		"E1":  experiments.E1SchemaSizes,
		"E2":  experiments.E2SparkImprecision,
		"E3":  experiments.E3ParallelSpeedup,
		"E4":  experiments.E4MongoVsStudio3T,
		"E5":  experiments.E5SkinferArrayGap,
		"E6":  experiments.E6MisonProjection,
		"E7":  experiments.E7FadjsSpeculation,
		"E8":  experiments.E8SkeletonCoverage,
		"E9":  experiments.E9ValidatorThroughput,
		"E10": experiments.E10SchemaTranslation,
		"E11": experiments.E11Normalization,
		"E12": experiments.E12CountingTypes,
		"E13": experiments.E13SchemaProfiling,
		"E14": experiments.E14Codegen,
		"E15": experiments.E15JaqlOutputSchema,
		"E16": experiments.E16SchemaDiscovery,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16"}
	for _, id := range order {
		if len(want) > 0 && !want[id] {
			continue
		}
		fmt.Println(runners[id]().String())
	}
}
