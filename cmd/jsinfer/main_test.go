package main

import "testing"

// TestValidateStreamFlags pins the fail-fast matrix: every combination
// that could only fail after (or silently survive) a full inference
// pass must be rejected before any input is read.
func TestValidateStreamFlags(t *testing.T) {
	cases := []struct {
		name                                    string
		stream, precision, tokenizerSet, mapSet bool
		output                                  string
		nArgs                                   int
		wantErr                                 bool
	}{
		{"plain materialised", false, false, false, false, "type", 1, false},
		{"plain streamed stdin", true, false, false, false, "type", 0, false},
		{"streamed report from files with precision", true, true, false, false, "report", 2, false},
		{"explicit tokenizer with stream", true, false, true, false, "type", 0, false},
		{"explicit map with stream", true, false, false, true, "type", 0, false},

		{"precision without stream", false, true, false, false, "report", 1, true},
		{"tokenizer without stream", false, false, true, false, "type", 1, true},
		{"map without stream", false, false, false, true, "type", 1, true},
		{"precision on non-report output", true, true, false, false, "type", 1, true},
		{"precision from stdin", true, true, false, false, "report", 0, true},
	}
	for _, c := range cases {
		err := validateStreamFlags(c.stream, c.precision, c.tokenizerSet, c.mapSet, c.output, c.nArgs)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", c.name, err, c.wantErr)
		}
	}
}
