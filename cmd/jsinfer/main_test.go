package main

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestValidateStreamFlags pins the fail-fast matrix: every combination
// that could only fail after (or silently survive) a full inference
// pass must be rejected before any input is read.
func TestValidateStreamFlags(t *testing.T) {
	cases := []struct {
		name                                                    string
		stream, precision, tokenizerSet, mapSet, stats, mmapSet bool
		mmapMode                                                string
		chunkBytesSet                                           bool
		output                                                  string
		nArgs                                                   int
		wantErr                                                 bool
	}{
		{"plain materialised", false, false, false, false, false, false, "auto", false, "type", 1, false},
		{"plain streamed stdin", true, false, false, false, false, false, "auto", false, "type", 0, false},
		{"streamed report from files with precision", true, true, false, false, false, false, "auto", false, "report", 2, false},
		{"explicit tokenizer with stream", true, false, true, false, false, false, "auto", false, "type", 0, false},
		{"explicit map with stream", true, false, false, true, false, false, "auto", false, "type", 0, false},
		{"stats with stream", true, false, false, false, true, false, "auto", false, "type", 0, false},
		{"mmap auto with stream from stdin", true, false, false, false, false, true, "auto", false, "type", 0, false},
		{"mmap on with stream from files", true, false, false, false, false, true, "on", false, "type", 2, false},
		{"mmap off with stream from stdin", true, false, false, false, false, true, "off", false, "type", 0, false},
		{"chunk-bytes with stream", true, false, false, false, false, false, "auto", true, "type", 0, false},

		{"precision without stream", false, true, false, false, false, false, "auto", false, "report", 1, true},
		{"tokenizer without stream", false, false, true, false, false, false, "auto", false, "type", 1, true},
		{"map without stream", false, false, false, true, false, false, "auto", false, "type", 1, true},
		{"stats without stream", false, false, false, false, true, false, "auto", false, "type", 1, true},
		{"mmap without stream", false, false, false, false, false, true, "auto", false, "type", 1, true},
		{"chunk-bytes without stream", false, false, false, false, false, false, "auto", true, "type", 1, true},
		{"precision on non-report output", true, true, false, false, false, false, "auto", false, "type", 1, true},
		{"precision from stdin", true, true, false, false, false, false, "auto", false, "report", 0, true},
		{"mmap on from stdin", true, false, false, false, false, true, "on", false, "type", 0, true},
	}
	for _, c := range cases {
		err := validateStreamFlags(c.stream, c.precision, c.tokenizerSet, c.mapSet, c.stats, c.mmapSet, c.mmapMode, c.chunkBytesSet, c.output, c.nArgs)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", c.name, err, c.wantErr)
		}
	}
}

// TestPrintStats pins the -stats table: one row per pipeline stage,
// every counter name=value on its stage's row, and times rendered in
// milliseconds. Scripts scrape this, so the shape is a contract.
func TestPrintStats(t *testing.T) {
	var b strings.Builder
	printStats(&b, core.StatsSnapshot{
		ChunksSplit: 3, BytesLexed: 4096, DocsAbsorbed: 128,
		IndexRecords: 120, FallbackRecords: 8, ParityRejects: 1,
		ScanDelegations: 5, BatchPublishes: 6, RootFuses: 2, Seals: 9,
		BytesAliased: 2048, BytesCopied: 512, BuffersRecycled: 4,
		MmapInputs: 1, ReaderInputs: 2,
		ReadNanos: 1_500_000, SplitNanos: 250_000, MapNanos: 7_000_000,
		ReduceNanos: 900_000, FuseNanos: 100_000,
	})
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // banner + header + 5 stage rows
		t.Fatalf("stats table has %d lines, want 7:\n%s", len(lines), out)
	}
	for i, stage := range []string{"read", "split", "map", "reduce", "fuse"} {
		if !strings.HasPrefix(strings.TrimSpace(lines[i+2]), stage) {
			t.Errorf("row %d = %q, want stage %q", i+2, lines[i+2], stage)
		}
	}
	for _, want := range []string{
		"chunks_split=3", "reader_inputs=2", "mmap_inputs=1",
		"bytes_copied=512", "buffers_recycled=4", "bytes_aliased=2048",
		"docs_absorbed=128", "bytes_lexed=4096",
		"index_records=120", "fallback_records=8", "parity_rejects=1",
		"scan_delegations=5", "batch_publishes=6", "root_fuses=2", "seals=9",
		"1.500ms", "0.250ms", "7.000ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats table lacks %q:\n%s", want, out)
		}
	}
}
