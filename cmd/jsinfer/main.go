// Command jsinfer infers a schema from an NDJSON collection on stdin
// (or files given as arguments) with a selectable engine, and prints
// the result as a type expression, a JSON Schema document, or
// generated TypeScript/Swift declarations.
//
// Usage:
//
//	jsinfer [-engine parametric-L|parametric-K|spark|skinfer]
//	        [-output type|jsonschema|typescript|swift|report]
//	        [-counted] [file.ndjson ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/infer"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/typelang"
)

func main() {
	engine := flag.String("engine", "parametric-L", "inference engine: parametric-L, parametric-K, spark, skinfer")
	output := flag.String("output", "type", "output form: type, jsonschema, typescript, swift, report")
	counted := flag.Bool("counted", false, "render counting annotations (type output only)")
	simplify := flag.Bool("simplify", false, "drop union alternatives subsumed by others")
	flag.Parse()

	docs, err := readInput(flag.Args())
	if err != nil {
		fatal(err)
	}
	if len(docs) == 0 {
		fatal(fmt.Errorf("no input documents"))
	}

	var eng core.Engine
	switch *engine {
	case "parametric-L":
		eng = core.ParametricL
	case "parametric-K":
		eng = core.ParametricK
	case "spark":
		eng = core.Spark
	case "skinfer":
		eng = core.Skinfer
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	result, err := core.InferSchema(docs, eng)
	if err != nil {
		fatal(err)
	}
	if *simplify {
		result.Type = typelang.Simplify(result.Type)
	}

	switch *output {
	case "type":
		if *counted {
			// Counting annotations come from the parametric engines.
			ty := infer.Infer(docs, infer.Options{Equiv: typelang.EquivKind})
			fmt.Println(ty.StringCounted())
		} else {
			fmt.Println(result.Type)
		}
	case "jsonschema":
		fmt.Println(string(core.MarshalIndent(result.JSONSchema, "  ")))
	case "typescript":
		fmt.Print(core.TypeToTypeScript("Root", result.Type))
	case "swift":
		fmt.Print(core.TypeToSwift("Root", result.Type))
	case "report":
		fmt.Printf("engine:    %s\n", result.Engine)
		fmt.Printf("documents: %d\n", len(docs))
		fmt.Printf("size:      %d nodes\n", result.Size)
		fmt.Printf("precision: %.3f\n", result.Precision)
		fmt.Printf("type:      %s\n", result.Type)
	default:
		fatal(fmt.Errorf("unknown output %q", *output))
	}
}

func readInput(files []string) ([]*jsonvalue.Value, error) {
	if len(files) == 0 {
		return jsontext.NewDecoder(os.Stdin).DecodeAll()
	}
	var docs []*jsonvalue.Value
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		part, err := jsontext.NewDecoder(f).DecodeAll()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		docs = append(docs, part...)
	}
	return docs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jsinfer:", err)
	os.Exit(1)
}
