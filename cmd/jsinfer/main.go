// Command jsinfer infers a schema from an NDJSON collection on stdin
// (or files given as arguments) with a selectable engine, and prints
// the result as a type expression, a JSON Schema document, or
// generated TypeScript/Swift declarations.
//
// Usage:
//
//	jsinfer [-engine parametric-L|parametric-K|spark|skinfer]
//	        [-output type|jsonschema|typescript|swift|report]
//	        [-workers N] [-stream] [-tokenizer scan|mison]
//	        [-map fused|refmap|indexed] [-mmap auto|on|off]
//	        [-chunk-bytes SIZE] [-precision] [-counted]
//	        [-stats] [-cpuprofile f] [-memprofile f] [file.ndjson ...]
//
// The parametric engines run their map/reduce over N workers
// (-workers, default GOMAXPROCS). With -stream the input is never
// materialised: documents are typed straight from lexer tokens (no
// value trees), and the workers lex and type document-aligned byte
// chunks in parallel, so collections far larger than memory infer at
// multi-worker speed. -tokenizer picks the streamed lexing machinery:
// "mison" (default) is the structural-index fast path (bitmap chunking
// and lexing), "scan" the byte-at-a-time reference lexer kept as the
// fallback and A/B baseline — both produce identical results. -map
// picks the streamed map phase: "fused" (default) absorbs documents
// straight from tokens into the worker accumulators, "indexed" absorbs
// straight off the structural index (separator tokens never
// materialise), "refmap" materialises the canonical per-document type
// first — identical results all three ways. With file arguments -mmap
// routes the input: "auto" (default) memory-maps large regular files so
// the zero-copy byte engines split and lex the file pages in place,
// falling back to buffered reads for pipes, short files and platforms
// without mmap; "on" requires mapping (and fails fast on stdin); "off"
// forces the reader path. -chunk-bytes SIZE (64K, 4M, …) cuts chunks at
// a byte target instead of every 256 documents — the knob for GB-scale
// corpora. Streaming is
// parametric-only. A streamed report has no precision column in its
// single pass; -precision fills it by re-reading the input in a
// bounded-memory second pass, which requires file arguments (stdin
// cannot be re-read). Flag combinations that could only fail after the
// (potentially huge) first pass are rejected up front.
//
// -stats (streamed runs only) prints the pipeline's flight recorder to
// stderr after inference: per-stage wall clocks (read, split, map,
// reduce, fuse) and the stage counters — chunks split, bytes lexed,
// documents absorbed, index fast-path vs token-fallback records, chunk
// parity rejections, collector publishes, root fuses and seals. The
// schema on stdout is unaffected, so -stats composes with scripts.
//
// -cpuprofile and -memprofile write pprof profiles covering the
// inference pass (the heap profile is taken after it completes), so
// absorption-path work is profileable without editing benchmarks:
// `go tool pprof jsinfer cpu.out`.
//
// -counted renders the selected parametric engine's own counting
// annotations; for Spark/Skinfer (whose types carry no counts) it
// falls back to a parametric-K pass over the materialised input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/genjson"
	"repro/internal/infer"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/typelang"
)

func main() {
	engine := flag.String("engine", "parametric-L", "inference engine: parametric-L, parametric-K, spark, skinfer")
	output := flag.String("output", "type", "output form: type, jsonschema, typescript, swift, report")
	counted := flag.Bool("counted", false, "render counting annotations (type output only)")
	simplify := flag.Bool("simplify", false, "drop union alternatives subsumed by others")
	workers := flag.Int("workers", 0, "parallel inference workers (parametric engines; 0 = GOMAXPROCS)")
	stream := flag.Bool("stream", false, "stream the input instead of materialising it (parametric engines only)")
	tokenizer := flag.String("tokenizer", "mison", "with -stream: lexing machinery, mison (default) or scan")
	mapMode := flag.String("map", "fused", "with -stream: map phase, fused (default), indexed or refmap")
	precision := flag.Bool("precision", false, "with -stream: compute precision in a second pass over the input files")
	mmap := flag.String("mmap", "auto", "with -stream and file arguments: memory-map inputs, auto (default), on, or off")
	chunkBytes := flag.String("chunk-bytes", "", "with -stream: cut chunks at this byte size instead of every 256 documents (e.g. 4M)")
	stats := flag.Bool("stats", false, "with -stream: print pipeline stage stats to stderr after inference")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the inference pass to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after inference) to this file")
	flag.Parse()
	tokenizerSet, mapSet, mmapSet := false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "tokenizer":
			tokenizerSet = true
		case "map":
			mapSet = true
		case "mmap":
			mmapSet = true
		}
	})

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	var eng core.Engine
	switch *engine {
	case "parametric-L":
		eng = core.ParametricL
	case "parametric-K":
		eng = core.ParametricK
	case "spark":
		eng = core.Spark
	case "skinfer":
		eng = core.Skinfer
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	var (
		result *core.Inference
		ndocs  int
		docs   []*jsonvalue.Value
	)
	var tz core.Tokenizer
	switch *tokenizer {
	case "scan":
		tz = core.TokenizerScan
	case "mison":
		tz = core.TokenizerMison
	default:
		fatal(fmt.Errorf("unknown tokenizer %q", *tokenizer))
	}
	var mm core.MapMode
	switch *mapMode {
	case "fused":
		mm = core.MapFused
	case "indexed":
		mm = core.MapIndexed
	case "refmap":
		mm = core.MapReference
	default:
		fatal(fmt.Errorf("unknown map mode %q", *mapMode))
	}
	var mmapMode core.MmapMode
	switch *mmap {
	case "auto":
		mmapMode = core.MmapAuto
	case "on":
		mmapMode = core.MmapOn
	case "off":
		mmapMode = core.MmapOff
	default:
		fatal(fmt.Errorf("unknown mmap mode %q (want auto, on or off)", *mmap))
	}
	var chunkTarget int
	if *chunkBytes != "" {
		cb, err := genjson.ParseSize(*chunkBytes)
		if err != nil {
			fatal(fmt.Errorf("-chunk-bytes: %w", err))
		}
		chunkTarget = int(cb)
	}
	// Flag-only validation happens before any input is read: a bad
	// combination must exit non-zero immediately, not after a
	// potentially huge inference pass (or, worse, be silently ignored).
	if err := validateStreamFlags(*stream, *precision, tokenizerSet, mapSet, *stats, mmapSet, *mmap, *chunkBytes != "", *output, flag.NArg()); err != nil {
		fatal(err)
	}
	if *stream {
		var pstats *core.PipelineStats
		if *stats {
			pstats = &core.PipelineStats{}
		}
		var err error
		result, ndocs, err = streamInput(flag.Args(), eng, core.StreamOptions{Workers: *workers, Tokenizer: tz, Map: mm, ChunkBytes: chunkTarget, Mmap: mmapMode, Stats: pstats})
		if pstats != nil {
			// Stats go to stderr even on an error exit: the partial
			// counters cover exactly the work done before the failure.
			printStats(os.Stderr, pstats.Snapshot())
		}
		if err != nil {
			fatal(err)
		}
		if *precision {
			// The streamed single pass cannot grade precision (the data
			// is gone); the explicit second pass over the files can.
			p, _, err := core.StreamPrecisionFiles(flag.Args(), result.Type)
			if err != nil {
				fatal(fmt.Errorf("precision pass: %w", err))
			}
			result.Precision = p
		}
	} else {
		var err error
		docs, err = readInput(flag.Args())
		if err != nil {
			fatal(err)
		}
		ndocs = len(docs)
		if ndocs == 0 {
			// Checked before inference: the non-parametric engines
			// cannot type an empty collection.
			fatal(fmt.Errorf("no input documents"))
		}
		result, err = core.InferSchemaWorkers(docs, eng, *workers)
		if err != nil {
			fatal(err)
		}
	}
	if ndocs == 0 {
		fatal(fmt.Errorf("no input documents"))
	}
	if *simplify {
		result.Type = typelang.Simplify(result.Type)
	}

	switch *output {
	case "type":
		switch {
		case *counted && (eng == core.ParametricK || eng == core.ParametricL):
			// Parametric types carry counting annotations already — same
			// rendering whether the input was streamed or materialised.
			fmt.Println(result.Type.StringCounted())
		case *counted:
			// Spark/Skinfer types carry no counts; derive them with a
			// parametric K pass (these engines never stream, so docs are
			// materialised here).
			ty := infer.InferParallel(docs, infer.Options{Equiv: typelang.EquivKind, Workers: *workers})
			fmt.Println(ty.StringCounted())
		default:
			fmt.Println(result.Type)
		}
	case "jsonschema":
		fmt.Println(string(core.MarshalIndent(result.JSONSchema, "  ")))
	case "typescript":
		fmt.Print(core.TypeToTypeScript("Root", result.Type))
	case "swift":
		fmt.Print(core.TypeToSwift("Root", result.Type))
	case "report":
		fmt.Printf("engine:    %s\n", result.Engine)
		fmt.Printf("documents: %d\n", ndocs)
		fmt.Printf("size:      %d nodes\n", result.Size)
		if result.Precision >= 0 {
			fmt.Printf("precision: %.3f\n", result.Precision)
		} else {
			fmt.Printf("precision: n/a (streamed single pass; rerun with -precision and file arguments for a second pass)\n")
		}
		fmt.Printf("type:      %s\n", result.Type)
	default:
		fatal(fmt.Errorf("unknown output %q", *output))
	}
}

// validateStreamFlags rejects stream-flag combinations up front, before
// any input is read: -precision re-reads the input for the report's
// precision column, so it needs -stream, the report output and
// re-readable file arguments (stdin cannot be re-read); -tokenizer,
// -map, -mmap, -chunk-bytes and -stats configure the streamed engines,
// so explicitly setting any of them without -stream is a mistake rather
// than something to ignore. -mmap on additionally needs file arguments
// — stdin is a pipe and cannot be memory-mapped, and "map or fail" must
// fail here, not after a huge first pass.
func validateStreamFlags(stream, precision, tokenizerSet, mapSet, stats, mmapSet bool, mmapMode string, chunkBytesSet bool, output string, nArgs int) error {
	if !stream {
		if precision {
			return fmt.Errorf("-precision requires -stream (a materialised report always includes precision)")
		}
		if tokenizerSet {
			return fmt.Errorf("-tokenizer selects the streamed lexer; add -stream")
		}
		if mapSet {
			return fmt.Errorf("-map selects the streamed map phase; add -stream")
		}
		if stats {
			return fmt.Errorf("-stats reports the streamed pipeline's counters; add -stream")
		}
		if mmapSet {
			return fmt.Errorf("-mmap routes the streamed engines' file inputs; add -stream")
		}
		if chunkBytesSet {
			return fmt.Errorf("-chunk-bytes sizes the streamed engines' chunks; add -stream")
		}
		return nil
	}
	if precision && output != "report" {
		return fmt.Errorf("-precision only affects -output report")
	}
	if precision && nArgs == 0 {
		return fmt.Errorf("-precision with -stream needs file arguments: stdin cannot be re-read")
	}
	if mmapMode == "on" && nArgs == 0 {
		return fmt.Errorf("-mmap on needs file arguments: stdin is not a regular file and cannot be memory-mapped")
	}
	return nil
}

func readInput(files []string) ([]*jsonvalue.Value, error) {
	if len(files) == 0 {
		return jsontext.NewDecoder(os.Stdin).DecodeAll()
	}
	var docs []*jsonvalue.Value
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		part, err := jsontext.NewDecoder(f).DecodeAll()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		docs = append(docs, part...)
	}
	return docs, nil
}

// printStats renders the pipeline flight recorder as a per-stage table
// — the CLI face of the same counters jsinferd serves from /v1/stats
// and /metrics. The stages overlap in real time (the reader splits
// while the workers absorb), so the times answer "where did each
// stage's goroutines spend their time", not fractions of the wall.
func printStats(w io.Writer, s core.StatsSnapshot) {
	ms := func(n int64) string { return fmt.Sprintf("%.3fms", float64(n)/1e6) }
	fmt.Fprintln(w, "pipeline stats:")
	fmt.Fprintf(w, "  %-7s %12s  %s\n", "stage", "time", "counters")
	fmt.Fprintf(w, "  %-7s %12s  chunks_split=%d reader_inputs=%d mmap_inputs=%d bytes_copied=%d buffers_recycled=%d\n",
		"read", ms(s.ReadNanos), s.ChunksSplit, s.ReaderInputs, s.MmapInputs, s.BytesCopied, s.BuffersRecycled)
	fmt.Fprintf(w, "  %-7s %12s  bytes_aliased=%d\n", "split", ms(s.SplitNanos), s.BytesAliased)
	fmt.Fprintf(w, "  %-7s %12s  docs_absorbed=%d bytes_lexed=%d index_records=%d fallback_records=%d parity_rejects=%d scan_delegations=%d\n",
		"map", ms(s.MapNanos), s.DocsAbsorbed, s.BytesLexed, s.IndexRecords, s.FallbackRecords, s.ParityRejects, s.ScanDelegations)
	fmt.Fprintf(w, "  %-7s %12s  batch_publishes=%d\n", "reduce", ms(s.ReduceNanos), s.BatchPublishes)
	fmt.Fprintf(w, "  %-7s %12s  root_fuses=%d seals=%d\n", "fuse", ms(s.FuseNanos), s.RootFuses, s.Seals)
}

// streamInput runs streaming-parallel inference over stdin or the
// named files (one decoder per file, so errors name the file).
func streamInput(files []string, eng core.Engine, opts core.StreamOptions) (*core.Inference, int, error) {
	if len(files) == 0 {
		return core.InferSchemaStreamWith(os.Stdin, eng, opts)
	}
	return core.InferSchemaStreamFilesWith(files, eng, opts)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jsinfer:", err)
	os.Exit(1)
}
