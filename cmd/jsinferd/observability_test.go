// observability_test.go exercises the daemon's flight recorder: the
// pprof debug listener surface, traceparent propagation into the
// /debug/traces ring, the structured request log, and the pipeline
// stage counters travelling end to end from an adversarial ingest to
// /v1/stats, /metrics and the trace attributes.

package main

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon/trace"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/registry"
)

// newObservedServer is newTestServer with the tracing/logging seams
// exposed: the caller sees the tracer ring and the log buffer the
// handler writes into.
func newObservedServer(t *testing.T, opts registry.Options, cfg handlerConfig) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg := registry.New(opts)
	srv := httptest.NewServer(newHandler(reg, cfg))
	t.Cleanup(func() {
		srv.Close()
		reg.Close()
	})
	return srv, reg
}

// TestDebugHandlerServesPprof is the flip side of the matrix's
// pprof-absent-from-api-404 rows: the -debug-addr handler is where the
// profiles actually live.
func TestDebugHandlerServesPprof(t *testing.T) {
	srv := httptest.NewServer(newDebugHandler())
	defer srv.Close()

	code, body := get(t, srv.URL+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: %d, body %.80q", code, body)
	}
	if code, _ := get(t, srv.URL+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("pprof cmdline: %d", code)
	}
	// The heap profile streams protobuf; status is what matters.
	if code, _ := get(t, srv.URL+"/debug/pprof/heap"); code != 200 {
		t.Errorf("pprof heap: %d", code)
	}
}

// findTrace locates the /debug/traces entry with the given trace ID.
func findTrace(t *testing.T, tracesBody, traceID string) *jsonvalue.Value {
	t.Helper()
	tv, err := jsontext.ParseString(tracesBody)
	if err != nil {
		t.Fatal(err)
	}
	traces, ok := tv.Get("traces")
	if !ok {
		t.Fatalf(`/debug/traces lacks "traces": %s`, tracesBody)
	}
	for _, tr := range traces.Elems() {
		if id, ok := tr.Get("trace_id"); ok && id.Str() == traceID {
			return tr
		}
	}
	t.Fatalf("trace %s not in /debug/traces:\n%s", traceID, tracesBody)
	return nil
}

// TestTraceparentJoinsAndRecords drives one traced ingest end to end: a
// W3C traceparent goes in, the same trace ID comes back on the
// response, and /debug/traces shows the request joined to the caller's
// trace with the admission→quota→ingest→flush stage spans and the
// ingest volume attributes on the root.
func TestTraceparentJoinsAndRecords(t *testing.T) {
	srv, _ := newObservedServer(t, registry.Options{}, handlerConfig{tracer: trace.New(8)})

	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const callerSpan = "00f067aa0ba902b7"
	req, err := http.NewRequest("POST", srv.URL+"/v1/collections/traced/ingest",
		strings.NewReader(`{"a": 1}`+"\n"+`{"a": 2, "b": "x"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Traceparent", "00-"+callerTrace+"-"+callerSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	// The response advertises the daemon's span inside the caller's
	// trace, so the caller can stitch the two sides together.
	tp, ok := trace.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q unparsable", resp.Header.Get("Traceparent"))
	}
	if tp.TraceID.String() != callerTrace {
		t.Errorf("response trace ID %s, want the caller's %s", tp.TraceID, callerTrace)
	}

	_, body := get(t, srv.URL+"/debug/traces")
	tr := findTrace(t, body, callerTrace)
	if remote, _ := tr.Get("remote"); !remote.Bool() {
		t.Error("joined trace must be marked remote")
	}
	spans, _ := tr.Get("spans")
	root := spans.Elem(0)
	if name, _ := root.Get("name"); name.Str() != "POST /v1/collections/{name}/ingest" {
		t.Errorf("root span name %q, want the route pattern", name.Str())
	}
	if parent, _ := root.Get("parent_id"); parent.Str() != callerSpan {
		t.Errorf("root hangs under %q, want the caller's span %s", parent.Str(), callerSpan)
	}
	attrs, _ := root.Get("attrs")
	for attr, want := range map[string]int64{"docs": 2, "status": 200, "fallback_records": 0} {
		if v, ok := attrs.Get(attr); !ok || v.Int() != want {
			t.Errorf("root attr %s = %v, want %d", attr, v, want)
		}
	}
	if v, ok := attrs.Get("collection"); !ok || v.Str() != "traced" {
		t.Errorf("root attr collection = %v", v)
	}
	stages := map[string]bool{}
	for _, sp := range spans.Elems() {
		name, _ := sp.Get("name")
		stages[name.Str()] = true
	}
	for _, stage := range []string{"admission", "decode", "quota", "ingest", "flush"} {
		if !stages[stage] {
			t.Errorf("stage span %q missing; recorded %v", stage, stages)
		}
	}
}

// TestTracesRingWithoutParent covers the common case: no caller
// traceparent, every request still lands in the ring under a fresh
// trace ID, newest last.
func TestTracesRingWithoutParent(t *testing.T) {
	srv, _ := newObservedServer(t, registry.Options{}, handlerConfig{tracer: trace.New(4)})

	for i := 0; i < 6; i++ {
		get(t, srv.URL+"/healthz")
	}
	_, body := get(t, srv.URL+"/debug/traces")
	tv, err := jsontext.ParseString(body)
	if err != nil {
		t.Fatal(err)
	}
	traces, _ := tv.Get("traces")
	if traces.Len() != 4 {
		t.Fatalf("ring holds %d traces, want capacity 4", traces.Len())
	}
	for _, tr := range traces.Elems() {
		name, _ := tr.Get("name")
		if name.Str() != "GET /healthz" {
			t.Errorf("ring entry %q, want only the healthz requests to survive", name.Str())
		}
		if remote, _ := tr.Get("remote"); remote.Bool() {
			t.Error("parentless trace must not be marked remote")
		}
	}
}

// TestRequestLogging pins the structured request log: one line per
// request carrying method, route pattern, status, duration and the
// trace ID, plus a warning line past the -slow-request threshold.
func TestRequestLogging(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{mu: &mu, w: &buf}, nil))
	srv, _ := newObservedServer(t, registry.Options{},
		handlerConfig{logger: logger, slow: time.Nanosecond})

	get(t, srv.URL+"/healthz")
	get(t, srv.URL+"/nowhere")

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	byMsgRoute := map[[2]string]*jsonvalue.Value{}
	for _, line := range lines {
		lv, err := jsontext.ParseString(line)
		if err != nil {
			t.Fatalf("unparsable log line %q: %v", line, err)
		}
		msg, _ := lv.Get("msg")
		route, _ := lv.Get("route")
		byMsgRoute[[2]string{msg.Str(), route.Str()}] = lv
	}

	healthz, ok := byMsgRoute[[2]string{"request", "GET /healthz"}]
	if !ok {
		t.Fatalf("no request line for GET /healthz in %v", lines)
	}
	if status, _ := healthz.Get("status"); status.Int() != 200 {
		t.Errorf("healthz log status = %d", status.Int())
	}
	if id, ok := healthz.Get("trace_id"); !ok || len(id.Str()) != 32 {
		t.Errorf("healthz log trace_id = %v, want a 32-hex trace ID", id)
	}
	if dur, ok := healthz.Get("duration_ms"); !ok || dur.Num() < 0 {
		t.Errorf("healthz log duration_ms = %v", dur)
	}
	// Unmatched requests log under the "unmatched" route with the mux's
	// 404, so route-label cardinality stays bounded.
	if unmatched, ok := byMsgRoute[[2]string{"request", "unmatched"}]; !ok {
		t.Error("no request line for the unmatched route")
	} else if status, _ := unmatched.Get("status"); status.Int() != 404 {
		t.Errorf("unmatched log status = %d, want 404", status.Int())
	}
	// slow = 1ns: every request also warns, with the threshold attached.
	slow, ok := byMsgRoute[[2]string{"slow request", "GET /healthz"}]
	if !ok {
		t.Fatal("no slow-request warning despite a 1ns threshold")
	}
	if lvl, _ := slow.Get("level"); lvl.Str() != "WARN" {
		t.Errorf("slow-request level = %q, want WARN", lvl.Str())
	}
	if _, ok := slow.Get("threshold_ms"); !ok {
		t.Error("slow-request line lacks threshold_ms")
	}
}

// lockedWriter serialises handler log writes against the test's reads.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestNewLoggerFormats(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		if logger, err := newLogger(format); err != nil || logger == nil {
			t.Errorf("newLogger(%q): %v", format, err)
		}
	}
	if _, err := newLogger("logfmt"); err == nil {
		t.Error("newLogger accepted an unknown format")
	}
}

// TestPipelineCountersEndToEnd is the acceptance criterion for the
// stage stats: an index-mapped daemon ingests clean and adversarial
// payloads, and the fallback/parity counters come out — with the same
// values — on /v1/stats, /metrics, and the request's trace attributes.
func TestPipelineCountersEndToEnd(t *testing.T) {
	tracer := trace.New(16)
	srv, _ := newObservedServer(t, registry.Options{Map: core.MapIndexed},
		handlerConfig{tracer: tracer})

	// Clean ingest: everything absorbs off the structural index.
	if code, out := post(t, srv.URL+"/v1/collections/c/ingest",
		[]byte(`{"a": 1}`+"\n"+`{"a": 2}`+"\n"+`{"a": 3}`+"\n")); code != 200 {
		t.Fatalf("clean ingest: %d %s", code, out)
	}
	// A bad literal bails the index absorber into the token fallback
	// (which also rejects it — the kept prefix survives).
	if code, _ := post(t, srv.URL+"/v1/collections/c/ingest",
		[]byte(`{"a": 4}`+"\n"+`{"a": trve}`+"\n")); code != 400 {
		t.Fatal("bad literal: want 400")
	}
	// An unterminated string breaks quote parity, so the whole chunk is
	// rejected for index absorption before any record is attempted.
	if code, _ := post(t, srv.URL+"/v1/collections/c/ingest",
		[]byte(`{"a": "unterminated`)); code != 400 {
		t.Fatal("unterminated string: want 400")
	}

	_, stats := get(t, srv.URL+"/v1/stats")
	sv, err := jsontext.ParseString(stats)
	if err != nil {
		t.Fatal(err)
	}
	pv, ok := sv.Get("pipeline")
	if !ok {
		t.Fatalf("/v1/stats lacks pipeline: %s", stats)
	}
	for stat, want := range map[string]int64{
		"docs_absorbed":    4, // 3 clean + the kept prefix of the bad batch
		"index_records":    4, // every absorbed doc; the bad literal counts as fallback instead
		"fallback_records": 1,
		"parity_rejects":   1,
	} {
		if v, _ := pv.Get(stat); v.Int() != want {
			t.Errorf("/v1/stats pipeline.%s = %d, want %d", stat, v.Int(), want)
		}
	}

	_, exp := get(t, srv.URL+"/metrics")
	for metric, want := range map[string]float64{
		"jsinferd_pipeline_docs_absorbed_total":    4,
		"jsinferd_pipeline_index_records_total":    4,
		"jsinferd_pipeline_fallback_records_total": 1,
		"jsinferd_pipeline_parity_rejects_total":   1,
	} {
		if got := metricValue(t, exp, metric); got != want {
			t.Errorf("%s = %v, want %v", metric, got, want)
		}
	}

	// The per-request view: each ingest trace carries its own share of
	// the counters, so the three requests' attributes sum to the totals.
	_, body := get(t, srv.URL+"/debug/traces")
	tv, err := jsontext.ParseString(body)
	if err != nil {
		t.Fatal(err)
	}
	traces, _ := tv.Get("traces")
	sums := map[string]int64{}
	ingests := 0
	for _, tr := range traces.Elems() {
		name, _ := tr.Get("name")
		if name.Str() != "POST /v1/collections/{name}/ingest" {
			continue
		}
		ingests++
		spans, _ := tr.Get("spans")
		attrs, _ := spans.Elem(0).Get("attrs")
		for _, key := range []string{"docs", "index_records", "fallback_records", "parity_rejects"} {
			v, ok := attrs.Get(key)
			if !ok {
				t.Fatalf("ingest trace lacks attr %q: %s", key, tr)
			}
			sums[key] += v.Int()
		}
	}
	if ingests != 3 {
		t.Fatalf("found %d ingest traces, want 3", ingests)
	}
	for key, want := range map[string]int64{
		"docs": 4, "index_records": 4, "fallback_records": 1, "parity_rejects": 1,
	} {
		if sums[key] != want {
			t.Errorf("trace attr %s sums to %d, want %d (must reconcile with /v1/stats)", key, sums[key], want)
		}
	}
}
