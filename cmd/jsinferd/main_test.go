package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/genjson"
	"repro/internal/jsontext"
	"repro/internal/registry"
	"repro/internal/typelang"
)

func newTestServer(t *testing.T, opts registry.Options) (*httptest.Server, *registry.Registry) {
	t.Helper()
	return newTestServerMaxBody(t, opts, 0)
}

func newTestServerMaxBody(t *testing.T, opts registry.Options, maxBody int64) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg := registry.New(opts)
	srv := httptest.NewServer(newHandler(reg, handlerConfig{maxBody: maxBody}))
	t.Cleanup(func() {
		srv.Close()
		reg.Close()
	})
	return srv, reg
}

func post(t *testing.T, url string, body []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(out)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(out)
}

// TestServedSchemaMatchesBatchCLI is the acceptance criterion end to
// end: ingest a checked-in fixture over HTTP and the served schema must
// be byte-identical to what `jsinfer -stream` prints for the same file
// (the CLI is fmt.Println over core.InferSchemaStreamFiles's Type).
func TestServedSchemaMatchesBatchCLI(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.ndjson"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("fixtures: %v (%d found)", err, len(fixtures))
	}
	srv, _ := newTestServer(t, registry.Options{Equiv: typelang.EquivLabel})
	for _, name := range fixtures {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		col := filepath.Base(name)
		if code, body := post(t, srv.URL+"/v1/collections/"+col+"/ingest", data); code != http.StatusOK {
			t.Fatalf("%s: ingest status %d: %s", col, code, body)
		}
		inf, n, err := core.InferSchemaStreamFiles([]string{name}, core.ParametricL, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, served := get(t, srv.URL+"/v1/collections/"+col+"/schema")
		if want := inf.Type.String() + "\n"; served != want {
			t.Errorf("%s: served schema diverges from jsinfer -stream\n cli:    %s daemon: %s", col, want, served)
		}
		_, counted := get(t, srv.URL+"/v1/collections/"+col+"/schema?output=counted")
		if want := inf.Type.StringCounted() + "\n"; counted != want {
			t.Errorf("%s: counted rendering diverges\n cli:    %s daemon: %s", col, want, counted)
		}
		_, body := get(t, srv.URL+"/v1/collections/"+col+"/schema?meta=1")
		meta, err := jsontext.Parse([]byte(body))
		if err != nil {
			t.Fatalf("%s: meta envelope is not JSON: %v", col, err)
		}
		if docs, _ := meta.Get("docs"); docs.Int() != int64(n) {
			t.Errorf("%s: meta docs = %d, want %d", col, docs.Int(), n)
		}
	}
}

// TestConcurrentIngestOneCollection: many clients POSTing slices of one
// stream concurrently must converge to exactly the batch schema.
func TestConcurrentIngestOneCollection(t *testing.T) {
	docs := genjson.Collection(genjson.Twitter{Seed: 301}, 600)
	data := jsontext.MarshalLines(docs)
	lines := bytes.SplitAfter(data, []byte("\n"))
	const clients = 6
	var parts [clients][]byte
	for i, ln := range lines {
		parts[i%clients] = append(parts[i%clients], ln...)
	}
	srv, reg := newTestServer(t, registry.Options{Equiv: typelang.EquivLabel, Workers: 2})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/collections/tweets/ingest", "", bytes.NewReader(parts[c]))
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", c, resp.StatusCode)
			}
		}(c)
	}
	wg.Wait()
	want, _, err := core.InferSchemaStream(bytes.NewReader(data), core.ParametricL, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, served := get(t, srv.URL+"/v1/collections/tweets/schema")
	if served != want.Type.String()+"\n" {
		t.Errorf("concurrent ingest diverges from batch\n batch:  %s\n daemon: %s", want.Type, served)
	}
	snap, _ := reg.Get("tweets")
	if snap.Docs != int64(len(docs)) || snap.Version != clients {
		t.Errorf("docs=%d version=%d, want %d/%d", snap.Docs, snap.Version, len(docs), clients)
	}
}

// TestIngestErrorReturns400AndKeepsPrefix: malformed bodies report the
// absolute offset, keep the valid prefix, and show up in stats.
func TestIngestErrorReturns400AndKeepsPrefix(t *testing.T) {
	srv, _ := newTestServer(t, registry.Options{})
	code, body := post(t, srv.URL+"/v1/collections/c/ingest", []byte("{\"a\": 1}\n{]\n"))
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", code, body)
	}
	v, err := jsontext.Parse([]byte(body))
	if err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if msg, ok := v.Get("error"); !ok || !strings.Contains(msg.Str(), "offset") {
		t.Errorf("error message should carry the offset, got %s", body)
	}
	if d, _ := v.Get("docs"); d.Int() != 1 {
		t.Errorf("docs = %d, want the 1 doc before the error", d.Int())
	}
	_, served := get(t, srv.URL+"/v1/collections/c/schema")
	if served != "{a: Int}\n" {
		t.Errorf("prefix schema = %q, want {a: Int}", served)
	}
	_, stats := get(t, srv.URL+"/v1/stats")
	sv, err := jsontext.Parse([]byte(stats))
	if err != nil {
		t.Fatal(err)
	}
	if e, _ := sv.Get("errors"); e.Int() != 1 {
		t.Errorf("stats errors = %d, want 1\n%s", e.Int(), stats)
	}
}

// TestEndpointsAndFormats covers healthz, list, the remaining output
// formats and the error paths.
func TestEndpointsAndFormats(t *testing.T) {
	srv, _ := newTestServer(t, registry.Options{Equiv: typelang.EquivLabel})
	if code, body := get(t, srv.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz = %d %s", code, body)
	}
	if code, _ := get(t, srv.URL+"/v1/collections/none/schema"); code != http.StatusNotFound {
		t.Errorf("unknown collection schema status = %d, want 404", code)
	}
	if code, _ := post(t, srv.URL+"/v1/collections/orders/ingest",
		[]byte(`{"id": 1, "total": 9.5, "tags": ["a"]}`+"\n")); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	if code, _ := get(t, srv.URL+"/v1/collections/orders/schema?output=nope"); code != http.StatusBadRequest {
		t.Errorf("unknown output status = %d, want 400", code)
	}

	_, js := get(t, srv.URL+"/v1/collections/orders/schema?output=jsonschema")
	doc, err := jsontext.Parse([]byte(js))
	if err != nil {
		t.Fatalf("jsonschema output is not JSON: %v", err)
	}
	if ty, _ := doc.Get("type"); ty.Str() != "object" {
		t.Errorf("jsonschema type = %q, want object", ty.Str())
	}
	_, ts := get(t, srv.URL+"/v1/collections/orders/schema?output=typescript")
	if !strings.Contains(ts, "total") {
		t.Errorf("typescript output missing fields: %s", ts)
	}
	_, sw := get(t, srv.URL+"/v1/collections/orders/schema?output=swift")
	if !strings.Contains(sw, "total") {
		t.Errorf("swift output missing fields: %s", sw)
	}

	_, list := get(t, srv.URL+"/v1/collections")
	lv, err := jsontext.Parse([]byte(list))
	if err != nil {
		t.Fatal(err)
	}
	cols, _ := lv.Get("collections")
	if cols.Len() != 1 {
		t.Fatalf("list holds %d collections, want 1\n%s", cols.Len(), list)
	}
	first := cols.Elem(0)
	if name, _ := first.Get("name"); name.Str() != "orders" {
		t.Errorf("list name = %q", name.Str())
	}
	if d, _ := first.Get("docs"); d.Int() != 1 {
		t.Errorf("list docs = %d, want 1", d.Int())
	}

	// GET on the ingest route (wrong method) must not be routed.
	resp, err := http.Get(srv.URL + "/v1/collections/orders/ingest")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET ingest status = %d, want 405/404", resp.StatusCode)
	}
}

// TestManyCollectionsConcurrently drives distinct collections in
// parallel and checks isolation: each ends with its own schema.
func TestManyCollectionsConcurrently(t *testing.T) {
	srv, reg := newTestServer(t, registry.Options{Workers: 2, Shards: 2})
	const cols = 5
	var wg sync.WaitGroup
	for c := 0; c < cols; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				body := fmt.Sprintf("{\"col%d\": %d}\n", c, i)
				if code, out := post(t, fmt.Sprintf("%s/v1/collections/c%d/ingest", srv.URL, c), []byte(body)); code != http.StatusOK {
					t.Errorf("c%d: status %d: %s", c, code, out)
				}
			}
		}(c)
	}
	wg.Wait()
	for c := 0; c < cols; c++ {
		snap, ok := reg.Get(fmt.Sprintf("c%d", c))
		if !ok || snap.Docs != 4 {
			t.Errorf("c%d: docs=%d ok=%v, want 4", c, snap.Docs, ok)
			continue
		}
		if want := fmt.Sprintf("{col%d: Int}", c); snap.Type.String() != want {
			t.Errorf("c%d: schema %s, want %s", c, snap.Type, want)
		}
	}
}

// del issues a DELETE and returns status and body.
func del(t *testing.T, url string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(out)
}

// TestDeleteCollectionEndpoint covers the admin delete: 404 on a
// missing name, removal of the collection and its accumulator on an
// existing one, and immediate reuse of the name from scratch.
func TestDeleteCollectionEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, registry.Options{Equiv: typelang.EquivLabel})
	if code, body := del(t, srv.URL+"/v1/collections/ghost"); code != http.StatusNotFound {
		t.Fatalf("delete of unknown collection = %d (%s), want 404", code, body)
	}
	if code, _ := post(t, srv.URL+"/v1/collections/c/ingest", []byte(`{"a": 1}`+"\n")); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	code, body := del(t, srv.URL+"/v1/collections/c")
	if code != http.StatusOK {
		t.Fatalf("delete = %d (%s), want 200", code, body)
	}
	v, err := jsontext.Parse([]byte(body))
	if err != nil {
		t.Fatalf("delete body is not JSON: %v", err)
	}
	if d, _ := v.Get("deleted"); !d.Bool() {
		t.Errorf("delete body = %s, want deleted: true", body)
	}
	if code, _ := get(t, srv.URL+"/v1/collections/c/schema"); code != http.StatusNotFound {
		t.Errorf("schema after delete = %d, want 404", code)
	}
	if code, _ := del(t, srv.URL+"/v1/collections/c"); code != http.StatusNotFound {
		t.Errorf("second delete = %d, want 404", code)
	}
	// The name is reusable: a fresh ingest starts an empty collection.
	if code, _ := post(t, srv.URL+"/v1/collections/c/ingest", []byte(`{"b": "x"}`+"\n")); code != http.StatusOK {
		t.Fatal("re-ingest failed")
	}
	if _, served := get(t, srv.URL+"/v1/collections/c/schema"); served != "{b: Str}\n" {
		t.Errorf("recreated schema = %q, want {b: Str}", served)
	}
}

// TestMaxBodyReturns413AndKeepsPrefix pins the -max-body backpressure:
// a body over the limit yields 413 with exactly the malformed-doc
// bytes-kept semantics — the documents that fit under the limit are
// merged and reported, and the collection serves that prefix.
func TestMaxBodyReturns413AndKeepsPrefix(t *testing.T) {
	srv, _ := newTestServerMaxBody(t, registry.Options{}, 40)
	doc := `{"a": 1}` + "\n" // 9 bytes; 40-byte limit fits 4 whole docs
	code, body := post(t, srv.URL+"/v1/collections/c/ingest", []byte(strings.Repeat(doc, 10)))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", code, body)
	}
	v, err := jsontext.Parse([]byte(body))
	if err != nil {
		t.Fatalf("413 body is not JSON: %v", err)
	}
	if d, _ := v.Get("docs"); d.Int() != 4 {
		t.Errorf("docs = %d, want the 4 docs under the limit\n%s", d.Int(), body)
	}
	if msg, ok := v.Get("error"); !ok || !strings.Contains(msg.Str(), "request body too large") {
		t.Errorf("error message = %s", body)
	}
	if _, served := get(t, srv.URL+"/v1/collections/c/schema?output=counted"); served != "{a:4: Int(4)}(4)\n" {
		t.Errorf("kept prefix schema = %q, want counts of 4", served)
	}

	// An under-limit body on the same server ingests normally.
	if code, out := post(t, srv.URL+"/v1/collections/ok/ingest", []byte(doc)); code != http.StatusOK {
		t.Errorf("under-limit ingest = %d (%s), want 200", code, out)
	}

	// A body cut exactly on a document boundary keeps every whole doc.
	srv2, _ := newTestServerMaxBody(t, registry.Options{}, 18)
	code, body = post(t, srv2.URL+"/v1/collections/c/ingest", []byte(strings.Repeat(doc, 3)))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("boundary cut status %d (%s), want 413", code, body)
	}
	v, err = jsontext.Parse([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := v.Get("docs"); d.Int() != 2 {
		t.Errorf("boundary cut docs = %d, want 2\n%s", d.Int(), body)
	}
}

// TestStatsSchemaNodesServed pins the sealed-snapshot stats surfaced on
// /v1/stats.
func TestStatsSchemaNodesServed(t *testing.T) {
	srv, reg := newTestServer(t, registry.Options{})
	if code, _ := post(t, srv.URL+"/v1/collections/c/ingest", []byte(`{"a": 1, "b": "x"}`+"\n")); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	snap, _ := reg.Get("c")
	_, stats := get(t, srv.URL+"/v1/stats")
	v, err := jsontext.Parse([]byte(stats))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := v.Get("schema_nodes"); int(n.Int()) != snap.Type.Size() {
		t.Errorf("schema_nodes = %d, want %d\n%s", n.Int(), snap.Type.Size(), stats)
	}
}

// TestEquivParamCreateAndIngest pins the per-collection equivalence
// parameter: PUT creates under ?equiv=, ingest honours it, a
// disagreeing ?equiv= on either endpoint is 409, and an unknown value
// is 400.
func TestEquivParamCreateAndIngest(t *testing.T) {
	// Daemon default K; the collection pins L.
	srv, _ := newTestServer(t, registry.Options{Equiv: typelang.EquivKind})
	docs := genjson.Collection(genjson.SkewedOptional{Seed: 9, NumFields: 6}, 200)
	body := jsontext.MarshalLines(docs)
	wantL, _, err := core.InferSchemaStream(bytes.NewReader(body), core.ParametricL, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantK, _, err := core.InferSchemaStream(bytes.NewReader(body), core.ParametricK, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wantL.Type.String() == wantK.Type.String() {
		t.Fatal("fixture does not distinguish K from L")
	}

	// PUT create with ?equiv=L -> 201, meta reports L.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/collections/pinned?equiv=L", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT create: status %d body %s", resp.StatusCode, out)
	}
	meta, err := jsontext.Parse(out)
	if err != nil {
		t.Fatalf("PUT create body is not JSON: %v", err)
	}
	if e, _ := meta.Get("equiv"); e.Str() != "L" {
		t.Fatalf("PUT create meta equiv = %q, want L (body %s)", e.Str(), out)
	}
	// Idempotent re-create -> 200.
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/v1/collections/pinned?equiv=L", nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT re-create: status %d", resp.StatusCode)
	}
	// Conflicting re-create -> 409.
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/v1/collections/pinned?equiv=K", nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("PUT conflicting create: status %d, want 409", resp.StatusCode)
	}

	// Ingest without override goes into the pinned collection fine, and
	// the served schema is the L schema (not the daemon-default K one).
	if code, body := post(t, srv.URL+"/v1/collections/pinned/ingest", body); code != http.StatusOK {
		t.Fatalf("ingest: status %d body %s", code, body)
	}
	if _, got := get(t, srv.URL+"/v1/collections/pinned/schema"); got != wantL.Type.String()+"\n" {
		t.Errorf("served schema:\n%s\nwant L schema:\n%s", got, wantL.Type)
	}

	// Ingest with a disagreeing override -> 409, nothing merged.
	if code, out := post(t, srv.URL+"/v1/collections/pinned/ingest?equiv=K", body); code != http.StatusConflict {
		t.Fatalf("conflicting ingest: status %d body %s", code, out)
	}
	// Ingest with ?equiv= creating a fresh collection honours it.
	if code, out := post(t, srv.URL+"/v1/collections/fresh/ingest?equiv=parametric-L", body); code != http.StatusOK {
		t.Fatalf("creating ingest: status %d body %s", code, out)
	}
	if _, got := get(t, srv.URL+"/v1/collections/fresh/schema"); got != wantL.Type.String()+"\n" {
		t.Errorf("fresh collection schema:\n%s\nwant L schema:\n%s", got, wantL.Type)
	}
	// Unknown equiv value -> 400.
	if code, _ := post(t, srv.URL+"/v1/collections/x/ingest?equiv=Z", body); code != http.StatusBadRequest {
		t.Fatalf("equiv=Z: status %d, want 400", code)
	}
}
