// daemon_matrix_test.go is the production-intake test matrix: every
// endpoint × status path × Content-Encoding, driven table-style through
// httptest, plus fault injection (truncated gzip frames, client
// disconnect mid-POST, decompression bombs) and the /metrics
// reconciliation acceptance check.

package main

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/daemon/intake"
	"repro/internal/jsontext"
	"repro/internal/registry"
	"repro/internal/typelang"
)

// encodings is the Content-Encoding axis of the matrix. "" is the
// identity baseline every other column must match byte for byte.
var encodings = []string{"", "gzip", "zstd"}

// encodeBody compresses data per enc ("" passes through).
func encodeBody(t *testing.T, enc string, data []byte) []byte {
	t.Helper()
	switch enc {
	case "", "identity":
		return data
	case "gzip":
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	case "zstd":
		var buf bytes.Buffer
		zw := intake.NewZstdWriter(&buf)
		if _, err := zw.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	default:
		t.Fatalf("unknown test encoding %q", enc)
		return nil
	}
}

// request issues method+url with an optional Content-Encoding header
// and returns status, body and headers.
func request(t *testing.T, method, url, enc string, body []byte) (int, string, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if enc != "" {
		req.Header.Set("Content-Encoding", enc)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(out), resp.Header
}

// TestDaemonMatrix drives every endpoint through every status path it
// can produce, across content encodings where a body is involved. Each
// row gets a fresh daemon so rows are independent and the matrix stays
// order-insensitive.
func TestDaemonMatrix(t *testing.T) {
	okDocs := []byte(`{"a": 1}` + "\n" + `{"a": 2, "b": "x"}` + "\n")
	badDocs := []byte(`{"a": 1}` + "\n{]\n")
	bigDocs := []byte(strings.Repeat(`{"a": 1}`+"\n", 10)) // 90 bytes

	// A syntactically framed zstd frame whose single block is
	// entropy-coded (type 2): the built-in store-mode decoder gates it.
	entropyZstd := []byte{
		0x28, 0xB5, 0x2F, 0xFD, // magic
		0x00, 0x00, // frame header: no FCS, window descriptor
		0x25, 0x00, 0x00, // block header: last=1, type=2 (compressed), size=4
		0xde, 0xad, 0xbe, 0xef,
	}

	type row struct {
		name       string
		opts       registry.Options
		maxBody    int64
		setup      [][3]string // {method, path+query, body-literal} pre-requests
		method     string
		path       string
		encoding   string
		body       []byte // encoded with encoding before sending
		rawBody    []byte // pre-encoded bytes sent as-is (overrides body)
		wantStatus int
		wantBody   string // substring the response body must contain
		wantHeader string // header that must be present and non-empty
	}

	rows := []row{
		{name: "healthz-200", method: "GET", path: "/healthz",
			wantStatus: 200, wantBody: `"status"`},
		{name: "metrics-200", method: "GET", path: "/metrics",
			wantStatus: 200, wantBody: "# TYPE jsinferd_http_requests_total counter"},
		{name: "stats-200", method: "GET", path: "/v1/stats",
			wantStatus: 200, wantBody: `"rate_limited"`},
		{name: "collections-200", method: "GET", path: "/v1/collections",
			wantStatus: 200, wantBody: `"collections"`},
		{name: "unmatched-404", method: "GET", path: "/v1/nope",
			wantStatus: 404},
		{name: "debug-traces-200", method: "GET", path: "/debug/traces",
			wantStatus: 200, wantBody: `"traces"`},
		// pprof is the -debug-addr listener's surface only (see
		// TestDebugHandlerServesPprof); the API mux must not know it.
		{name: "pprof-absent-from-api-404", method: "GET", path: "/debug/pprof/",
			wantStatus: 404},
		{name: "pprof-profile-absent-from-api-404", method: "GET", path: "/debug/pprof/profile",
			wantStatus: 404},

		{name: "put-create-201", method: "PUT", path: "/v1/collections/c",
			wantStatus: 201, wantBody: `"created": true`},
		{name: "put-exists-200",
			setup:  [][3]string{{"PUT", "/v1/collections/c", ""}},
			method: "PUT", path: "/v1/collections/c",
			wantStatus: 200, wantBody: `"created": false`},
		{name: "put-equiv-conflict-409",
			opts:   registry.Options{Equiv: typelang.EquivLabel},
			setup:  [][3]string{{"PUT", "/v1/collections/c?equiv=K", ""}},
			method: "PUT", path: "/v1/collections/c?equiv=L",
			wantStatus: 409},
		{name: "put-bad-equiv-400", method: "PUT", path: "/v1/collections/c?equiv=Z",
			wantStatus: 400, wantBody: "unknown equiv"},
		{name: "put-bad-quota-400", method: "PUT", path: "/v1/collections/c?quota=docs=fast",
			wantStatus: 400, wantBody: "bad quota rate"},
		{name: "put-bad-quota-key-400", method: "PUT", path: "/v1/collections/c?quota=rows=5",
			wantStatus: 400, wantBody: "unknown quota key"},

		{name: "delete-200",
			setup:  [][3]string{{"POST", "/v1/collections/c/ingest", `{"a": 1}` + "\n"}},
			method: "DELETE", path: "/v1/collections/c",
			wantStatus: 200, wantBody: `"deleted": true`},
		{name: "delete-404", method: "DELETE", path: "/v1/collections/ghost",
			wantStatus: 404},

		{name: "schema-200",
			setup:  [][3]string{{"POST", "/v1/collections/c/ingest", `{"a": 1}` + "\n"}},
			method: "GET", path: "/v1/collections/c/schema",
			wantStatus: 200, wantBody: "{a: Int}"},
		{name: "schema-404", method: "GET", path: "/v1/collections/ghost/schema",
			wantStatus: 404},
		{name: "schema-bad-output-400",
			setup:  [][3]string{{"POST", "/v1/collections/c/ingest", `{"a": 1}` + "\n"}},
			method: "GET", path: "/v1/collections/c/schema?output=nope",
			wantStatus: 400, wantBody: "unknown output"},

		{name: "ingest-equiv-conflict-409",
			opts:   registry.Options{Equiv: typelang.EquivLabel},
			setup:  [][3]string{{"PUT", "/v1/collections/c?equiv=K", ""}},
			method: "POST", path: "/v1/collections/c/ingest?equiv=L", body: okDocs,
			wantStatus: 409},
		{name: "ingest-429-retry-after",
			opts:   registry.Options{Quota: registry.Quota{DocsPerSec: 1}},
			setup:  [][3]string{{"POST", "/v1/collections/c/ingest", string(bigDocs)}},
			method: "POST", path: "/v1/collections/c/ingest", body: okDocs,
			wantStatus: 429, wantBody: "quota", wantHeader: "Retry-After"},
		{name: "ingest-quota-param-429",
			setup: [][3]string{
				{"PUT", "/v1/collections/c?quota=docs=1", ""},
				{"POST", "/v1/collections/c/ingest", string(bigDocs)},
			},
			method: "POST", path: "/v1/collections/c/ingest", body: okDocs,
			wantStatus: 429, wantHeader: "Retry-After"},
		{name: "ingest-quota-lift-200",
			setup: [][3]string{
				{"PUT", "/v1/collections/c?quota=docs=1", ""},
				{"POST", "/v1/collections/c/ingest", string(bigDocs)},
				{"PUT", "/v1/collections/c?quota=", ""},
			},
			method: "POST", path: "/v1/collections/c/ingest", body: okDocs,
			wantStatus: 200},
		{name: "ingest-415-unknown-encoding",
			method: "POST", path: "/v1/collections/c/ingest",
			encoding: "br", rawBody: okDocs,
			wantStatus: 415, wantBody: "unsupported Content-Encoding"},
		{name: "ingest-415-encoding-list",
			method: "POST", path: "/v1/collections/c/ingest",
			encoding: "gzip, zstd", rawBody: okDocs,
			wantStatus: 415},
		{name: "ingest-415-zstd-entropy-coded",
			method: "POST", path: "/v1/collections/c/ingest",
			encoding: "zstd", rawBody: entropyZstd,
			wantStatus: 415, wantBody: "entropy-coded blocks"},
	}

	// The encoding axis: ingest 200 / 400-kept-prefix / 413 for
	// identity, gzip and zstd.
	for _, enc := range encodings {
		label := enc
		if label == "" {
			label = "identity"
		}
		rows = append(rows,
			row{name: "ingest-200-" + label,
				method: "POST", path: "/v1/collections/c/ingest",
				encoding: enc, body: okDocs,
				wantStatus: 200, wantBody: `"docs": 2`},
			row{name: "ingest-400-kept-prefix-" + label,
				method: "POST", path: "/v1/collections/c/ingest",
				encoding: enc, body: badDocs,
				wantStatus: 400, wantBody: `"docs": 1`},
			row{name: "ingest-413-decoded-limit-" + label,
				maxBody: 40, // fits 4 of the 10 nine-byte docs
				method:  "POST", path: "/v1/collections/c/ingest",
				encoding: enc, body: bigDocs,
				wantStatus: 413, wantBody: `"docs": 4`},
		)
	}

	for _, tc := range rows {
		t.Run(tc.name, func(t *testing.T) {
			srv, _ := newTestServerMaxBody(t, tc.opts, tc.maxBody)
			for _, s := range tc.setup {
				var body []byte
				if s[2] != "" {
					body = []byte(s[2])
				}
				if code, out, _ := request(t, s[0], srv.URL+s[1], "", body); code >= 400 {
					t.Fatalf("setup %s %s: status %d: %s", s[0], s[1], code, out)
				}
			}
			body := tc.rawBody
			if body == nil && tc.body != nil {
				body = encodeBody(t, tc.encoding, tc.body)
			}
			code, out, hdr := request(t, tc.method, srv.URL+tc.path, tc.encoding, body)
			if code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body: %s)", code, tc.wantStatus, out)
			}
			if tc.wantBody != "" && !strings.Contains(out, tc.wantBody) {
				t.Errorf("body missing %q:\n%s", tc.wantBody, out)
			}
			if tc.wantHeader != "" {
				v := hdr.Get(tc.wantHeader)
				if v == "" {
					t.Fatalf("missing %s header", tc.wantHeader)
				}
				if tc.wantHeader == "Retry-After" {
					if secs, err := strconv.Atoi(v); err != nil || secs < 1 {
						t.Errorf("Retry-After = %q, want an integer >= 1", v)
					}
				}
			}
		})
	}
}

// TestEncodedIngestByteIdentical is the first acceptance criterion:
// every checked-in fixture ingested under gzip and zstd yields a
// counted schema and doc count byte-identical to the identity encoding.
func TestEncodedIngestByteIdentical(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.ndjson"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("fixtures: %v (%d found)", err, len(fixtures))
	}
	srv, reg := newTestServer(t, registry.Options{Equiv: typelang.EquivLabel})
	for _, name := range fixtures {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		base := filepath.Base(name)
		type outcome struct {
			schema string
			docs   int64
		}
		var baseline outcome
		for i, enc := range encodings {
			col := fmt.Sprintf("%s-%d", base, i)
			code, out, _ := request(t, "POST", srv.URL+"/v1/collections/"+col+"/ingest",
				enc, encodeBody(t, enc, data))
			if code != http.StatusOK {
				t.Fatalf("%s (%s): ingest status %d: %s", base, enc, code, out)
			}
			_, counted, _ := request(t, "GET", srv.URL+"/v1/collections/"+col+"/schema?output=counted", "", nil)
			snap, _ := reg.Get(col)
			got := outcome{schema: counted, docs: snap.Docs}
			if i == 0 {
				baseline = got
				continue
			}
			if got != baseline {
				t.Errorf("%s: %s ingest diverges from identity\n identity: docs=%d %s %s: docs=%d %s",
					base, enc, baseline.docs, baseline.schema, enc, got.docs, got.schema)
			}
			// Decoded bytes must match the identity payload size exactly.
			if snap.Bytes != int64(len(data)) {
				t.Errorf("%s (%s): decoded bytes = %d, want %d", base, enc, snap.Bytes, len(data))
			}
		}
	}
}

// TestTruncatedGzipKeepsPrefix injects a gzip frame cut mid-stream: the
// documents whose decoded bytes arrived before the cut are kept, the
// request reports 400 with the kept count, the error is counted, and
// the collection stays usable.
func TestTruncatedGzipKeepsPrefix(t *testing.T) {
	srv, reg := newTestServer(t, registry.Options{})
	payload := []byte(strings.Repeat(`{"a": 1}`+"\n", 2000))
	frame := encodeBody(t, "gzip", payload)
	code, out, _ := request(t, "POST", srv.URL+"/v1/collections/c/ingest", "gzip", frame[:len(frame)/2])
	if code != http.StatusBadRequest {
		t.Fatalf("truncated gzip status = %d, want 400 (%s)", code, out)
	}
	v, err := jsontext.Parse([]byte(out))
	if err != nil {
		t.Fatalf("400 body is not JSON: %v", err)
	}
	snap, _ := reg.Get("c")
	if d, _ := v.Get("docs"); d.Int() != snap.Docs {
		t.Errorf("reported kept docs %d != collection docs %d", d.Int(), snap.Docs)
	}
	if snap.Errors != 1 {
		t.Errorf("collection errors = %d, want 1", snap.Errors)
	}
	// A wholly corrupt frame (bad magic) decodes nothing but still 400s.
	code, _, _ = request(t, "POST", srv.URL+"/v1/collections/c/ingest", "gzip", []byte("not gzip at all"))
	if code != http.StatusBadRequest {
		t.Errorf("corrupt gzip status = %d, want 400", code)
	}
	// The collection remains usable: a good ingest merges on top of the
	// kept prefix.
	code, _, _ = request(t, "POST", srv.URL+"/v1/collections/c/ingest", "gzip",
		encodeBody(t, "gzip", []byte(`{"b": true}`+"\n")))
	if code != http.StatusOK {
		t.Fatalf("ingest after faults: status %d", code)
	}
	if _, served, _ := request(t, "GET", srv.URL+"/v1/collections/c/schema", "", nil); !strings.Contains(served, "b?") {
		t.Errorf("schema after recovery = %q, want optional b merged in", served)
	}
}

// TestClientDisconnectMidPOST drops the TCP connection halfway through
// an ingest body: the documents that made it over the wire are merged
// (committed-prefix semantics), the failure is counted as an ingest
// error, and the collection serves normally afterwards.
func TestClientDisconnectMidPOST(t *testing.T) {
	srv, reg := newTestServer(t, registry.Options{})
	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sent := `{"a": 1}` + "\n" + `{"a": 2}` + "\n"
	// Promise far more bytes than we deliver, then hang up.
	fmt.Fprintf(conn, "POST /v1/collections/drop/ingest HTTP/1.1\r\nHost: t\r\nContent-Length: 1000000\r\n\r\n%s", sent)
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	// The server sees unexpected EOF and answers on the half-open
	// connection; read its response to synchronise instead of polling.
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("disconnect status = %d, want 400", resp.StatusCode)
		}
	}
	conn.Close()
	// Either way the registry must have committed the delivered prefix.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap, ok := reg.Get("drop"); ok && snap.Ingests >= 1 {
			if snap.Docs != 2 {
				t.Errorf("committed docs = %d, want the 2 delivered", snap.Docs)
			}
			if snap.Errors != 1 {
				t.Errorf("errors = %d, want 1", snap.Errors)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ingest never finished after disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Collection is alive and consistent.
	code, out, _ := request(t, "POST", srv.URL+"/v1/collections/drop/ingest", "", []byte(`{"a": 3}`+"\n"))
	if code != http.StatusOK {
		t.Fatalf("ingest after disconnect: %d %s", code, out)
	}
	if _, served, _ := request(t, "GET", srv.URL+"/v1/collections/drop/schema?output=counted", "", nil); !strings.Contains(served, "(3)") {
		t.Errorf("schema after disconnect = %q, want 3 docs counted", served)
	}
}

// le24 renders a zstd 3-byte little-endian block header value.
func le24(v uint32) []byte { return []byte{byte(v), byte(v >> 8), byte(v >> 16)} }

// zstdBomb hand-builds a checksum-less zstd frame that decodes to docs
// followed by inflate spaces: a raw block carrying the docs, then one
// RLE block that blows up 1 literal byte into inflate — a genuine
// decompression bomb (frame size ~len(docs)+10 bytes).
func zstdBomb(docs []byte, inflate int) []byte {
	frame := []byte{0x28, 0xB5, 0x2F, 0xFD, 0x00, 0x00}  // magic + minimal header
	frame = append(frame, le24(uint32(len(docs))<<3)...) // raw block, not last
	frame = append(frame, docs...)
	frame = append(frame, le24(1|1<<1|uint32(inflate)<<3)...) // RLE block, last
	return append(frame, ' ')
}

// TestDecompressionBomb413 sends a tiny compressed body that inflates
// far past -max-body: the decoded-byte limit cuts it off with the same
// 413 + kept-prefix semantics as an oversized identity body, for both
// gzip and zstd.
func TestDecompressionBomb413(t *testing.T) {
	docs := []byte(strings.Repeat(`{"a": 1}`+"\n", 10))
	const inflate = 900_000
	payload := append(append([]byte{}, docs...), bytes.Repeat([]byte(" "), inflate)...)
	for _, enc := range []string{"gzip", "zstd"} {
		t.Run(enc, func(t *testing.T) {
			srv, reg := newTestServerMaxBody(t, registry.Options{}, 40)
			var bomb []byte
			if enc == "zstd" {
				// The built-in writer is store-mode (it cannot compress),
				// so the zstd bomb is a hand-built RLE frame.
				bomb = zstdBomb(docs, inflate)
			} else {
				bomb = encodeBody(t, enc, payload)
			}
			if len(bomb) >= len(payload)/100 {
				t.Fatalf("bomb did not compress (%d vs %d decoded)", len(bomb), len(payload))
			}
			code, out, _ := request(t, "POST", srv.URL+"/v1/collections/c/ingest", enc, bomb)
			if code != http.StatusRequestEntityTooLarge {
				t.Fatalf("bomb status = %d, want 413 (%s)", code, out)
			}
			v, err := jsontext.Parse([]byte(out))
			if err != nil {
				t.Fatal(err)
			}
			if d, _ := v.Get("docs"); d.Int() != 4 {
				t.Errorf("kept docs = %d, want the 4 under the 40-byte decoded limit", d.Int())
			}
			snap, _ := reg.Get("c")
			if snap.Bytes > 41 {
				t.Errorf("decoded bytes read = %d, want <= limit+1", snap.Bytes)
			}
		})
	}
}

// TestStormWithMetricsAndDeletes hammers the daemon with concurrent
// encoded ingests while other goroutines scrape /metrics, delete and
// recreate a churn collection, and bounce off a rate-limited one. The
// steady collection must still converge deterministically, and every
// scrape must succeed mid-storm.
func TestStormWithMetricsAndDeletes(t *testing.T) {
	srv, reg := newTestServer(t, registry.Options{Workers: 2, Shards: 2})
	const writers, rounds = 4, 6
	doc := []byte(`{"k": 1, "v": "x"}` + "\n")

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				enc := encodings[(w+i)%len(encodings)]
				code, out, _ := request(t, "POST", srv.URL+"/v1/collections/steady/ingest", enc, encodeBody(t, enc, doc))
				if code != http.StatusOK {
					t.Errorf("steady ingest (%s): %d %s", enc, code, out)
				}
				// Churn: ingest then maybe delete; both outcomes are legal
				// races, only 200/404 may come back.
				request(t, "POST", srv.URL+"/v1/collections/churn/ingest", "", doc)
				if code, _, _ := request(t, "DELETE", srv.URL+"/v1/collections/churn", "", nil); code != 200 && code != 404 {
					t.Errorf("churn delete: status %d", code)
				}
				// Rate-limited collection: 200 or 429 only.
				if code, _, _ := request(t, "POST", srv.URL+"/v1/collections/tight/ingest?quota=docs=1", "", doc); code != 200 && code != 429 {
					t.Errorf("tight ingest: status %d", code)
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if code, body, _ := request(t, "GET", srv.URL+"/metrics", "", nil); code != 200 || !strings.Contains(body, "jsinferd_ingest_docs_total") {
					t.Errorf("mid-storm scrape: status %d", code)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	scrapes.Wait()

	snap, ok := reg.Get("steady")
	if !ok || snap.Docs != writers*rounds || snap.Errors != 0 {
		t.Errorf("steady: docs=%d errors=%d, want %d/0", snap.Docs, snap.Errors, writers*rounds)
	}
	if snap.Type.String() != "{k: Int, v: Str}" {
		t.Errorf("steady schema = %s", snap.Type)
	}
}

// metricValue extracts one label-less sample from an exposition dump.
func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, exposition)
	return 0
}

// TestMetricsReconcileWithStats is the third acceptance criterion:
// after a quiesced mix of successful, failing and rate-limited ingests,
// GET /metrics serves well-formed exposition text whose ingest counters
// agree exactly with /v1/stats.
func TestMetricsReconcileWithStats(t *testing.T) {
	srv, _ := newTestServer(t, registry.Options{Equiv: typelang.EquivLabel})

	// Successful ingests across encodings.
	for i, enc := range encodings {
		body := encodeBody(t, enc, []byte(fmt.Sprintf(`{"n": %d, "s": "v"}`+"\n", i)))
		if code, out, _ := request(t, "POST", srv.URL+"/v1/collections/mix/ingest", enc, body); code != 200 {
			t.Fatalf("ingest (%s): %d %s", enc, code, out)
		}
	}
	// One pipeline error (counts its kept prefix).
	if code, _, _ := request(t, "POST", srv.URL+"/v1/collections/mix/ingest", "", []byte(`{"n": 9}`+"\n{]\n")); code != 400 {
		t.Fatal("want 400")
	}
	// One rate-limited rejection on a quota-pinned collection.
	if code, _, _ := request(t, "PUT", srv.URL+"/v1/collections/tight?quota=docs=1", "", nil); code != 201 {
		t.Fatal("PUT quota failed")
	}
	request(t, "POST", srv.URL+"/v1/collections/tight/ingest", "", []byte(strings.Repeat(`{"x": 1}`+"\n", 5)))
	if code, _, _ := request(t, "POST", srv.URL+"/v1/collections/tight/ingest", "", []byte(`{"x": 1}`+"\n")); code != 429 {
		t.Fatal("want 429")
	}

	code, stats, _ := request(t, "GET", srv.URL+"/v1/stats", "", nil)
	if code != 200 {
		t.Fatal("stats failed")
	}
	sv, err := jsontext.Parse([]byte(stats))
	if err != nil {
		t.Fatal(err)
	}
	code, exp, hdr := request(t, "GET", srv.URL+"/metrics", "", nil)
	if code != 200 {
		t.Fatal("metrics failed")
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type = %q", ct)
	}
	// Well-formed exposition: every line is a comment, blank, or
	// name{labels} value.
	for _, line := range strings.Split(strings.TrimRight(exp, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		// Label values may hold spaces (route patterns), so the value is
		// everything after the last space.
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(line[cut+1:], 64); err != nil {
			t.Fatalf("non-numeric sample value in %q", line)
		}
	}

	for metric, stat := range map[string]string{
		"jsinferd_ingest_docs_total":    "docs",
		"jsinferd_ingest_bytes_total":   "bytes",
		"jsinferd_ingest_errors_total":  "errors",
		"jsinferd_rate_limited_total":   "rate_limited",
		"jsinferd_registry_collections": "collections",
		"jsinferd_registry_docs":        "docs",
		"jsinferd_registry_symbols":     "symbols",
	} {
		want, ok := sv.Get(stat)
		if !ok {
			t.Fatalf("/v1/stats lacks %q", stat)
		}
		if got := metricValue(t, exp, metric); got != float64(want.Int()) {
			t.Errorf("%s = %v, /v1/stats %s = %d — counters must reconcile", metric, got, stat, want.Int())
		}
	}
	// The pipeline flight recorder reconciles field for field: the
	// jsinferd_pipeline_* gauges read the same registry snapshots the
	// /v1/stats "pipeline" object serializes, so after quiesce they are
	// equal — counters exactly, stage clocks under the same nanos→seconds
	// conversion.
	pv, ok := sv.Get("pipeline")
	if !ok {
		t.Fatal(`/v1/stats lacks "pipeline"`)
	}
	for metric, stat := range map[string]string{
		"jsinferd_pipeline_chunks_split_total":     "chunks_split",
		"jsinferd_pipeline_bytes_lexed_total":      "bytes_lexed",
		"jsinferd_pipeline_docs_absorbed_total":    "docs_absorbed",
		"jsinferd_pipeline_index_records_total":    "index_records",
		"jsinferd_pipeline_fallback_records_total": "fallback_records",
		"jsinferd_pipeline_parity_rejects_total":   "parity_rejects",
		"jsinferd_pipeline_scan_delegations_total": "scan_delegations",
		"jsinferd_pipeline_batch_publishes_total":  "batch_publishes",
		"jsinferd_pipeline_root_fuses_total":       "root_fuses",
		"jsinferd_pipeline_seals_total":            "seals",
	} {
		want, ok := pv.Get(stat)
		if !ok {
			t.Fatalf("/v1/stats pipeline lacks %q", stat)
		}
		if got := metricValue(t, exp, metric); got != float64(want.Int()) {
			t.Errorf("%s = %v, /v1/stats pipeline.%s = %d — counters must reconcile",
				metric, got, stat, want.Int())
		}
	}
	for metric, stat := range map[string]string{
		"jsinferd_pipeline_read_seconds_total":   "read_nanos",
		"jsinferd_pipeline_split_seconds_total":  "split_nanos",
		"jsinferd_pipeline_map_seconds_total":    "map_nanos",
		"jsinferd_pipeline_reduce_seconds_total": "reduce_nanos",
		"jsinferd_pipeline_fuse_seconds_total":   "fuse_nanos",
	} {
		want, ok := pv.Get(stat)
		if !ok {
			t.Fatalf("/v1/stats pipeline lacks %q", stat)
		}
		if got := metricValue(t, exp, metric); got != float64(want.Int())/1e9 {
			t.Errorf("%s = %v, /v1/stats pipeline.%s = %dns — clocks must reconcile",
				metric, got, stat, want.Int())
		}
	}
	// The mixed workload left its signature in the recorder: documents
	// were absorbed (successes plus the 400's kept prefix) and bytes
	// lexed, and the counters agree with the registry's own accounting.
	if da, _ := pv.Get("docs_absorbed"); da.Int() == 0 {
		t.Error("pipeline.docs_absorbed = 0 after successful ingests")
	}
	// The middleware metered the ingest route with its status codes.
	for _, series := range []string{
		`jsinferd_http_requests_total{route="POST /v1/collections/{name}/ingest",code="200"}`,
		`jsinferd_http_requests_total{route="POST /v1/collections/{name}/ingest",code="400"}`,
		`jsinferd_http_requests_total{route="POST /v1/collections/{name}/ingest",code="429"}`,
		`jsinferd_http_request_seconds_count{route="GET /v1/stats"}`,
	} {
		if !strings.Contains(exp, series) {
			t.Errorf("exposition lacks series %s", series)
		}
	}
}
