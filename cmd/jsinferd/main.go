// Command jsinferd is the schema-inference ingest daemon: a long-running
// HTTP service over the live-merge registry (internal/registry). Clients
// stream NDJSON at named collections and read back the monotonically
// growing schema at any time, in any of jsinfer's output formats — the
// batch CLI turned into a service, with byte-identical schemas.
//
// Usage:
//
//	jsinferd [-addr :8787] [-engine parametric-L|parametric-K]
//	         [-workers N] [-shards N] [-tokenizer mison|scan]
//	         [-map fused|indexed|refmap]
//	         [-max-body N] [-rate-docs N] [-rate-bytes N]
//	         [-log-format text|json] [-slow-request D]
//	         [-trace-buffer N] [-debug-addr addr]
//
// Observability (see docs/ARCHITECTURE.md, "Observability"):
//
//   - Logs go to stderr through log/slog; -log-format picks text
//     (default) or json. Every request logs one line with method, route
//     pattern, status, duration and trace ID; a request slower than
//     -slow-request additionally logs at warning level (0 disables).
//   - Every request runs under a span tracer: an incoming W3C
//     traceparent header is joined (the response echoes the daemon's
//     own traceparent either way), ingest requests grow child spans per
//     stage (admission → decode → quota → ingest → flush) with document,
//     byte and index-fallback attributes, and the last -trace-buffer
//     finished traces are served as JSON from GET /debug/traces.
//   - -debug-addr (off by default) serves net/http/pprof on a separate
//     listener, keeping profiling off the public API surface.
//
// API:
//
//	PUT /v1/collections/{name}[?equiv=K|L][&quota=docs=N,bytes=N]
//	    Creates the collection without ingesting — under the given
//	    merge equivalence when ?equiv= is set, the daemon default
//	    otherwise. 201 on creation, 200 when it already exists with a
//	    compatible equivalence, 409 when ?equiv= disagrees with the
//	    equivalence the collection was created under. ?quota= pins a
//	    per-collection ingest rate limit overriding the daemon's
//	    -rate-docs/-rate-bytes defaults (0 or an empty value lifts the
//	    limit); on an existing collection it re-targets the live quota
//	    in place.
//	POST /v1/collections/{name}/ingest[?equiv=K|L][&quota=...]
//	    Body: NDJSON or concatenated JSON, streamed straight into the
//	    chunked token pipeline (bounded memory; the body is never
//	    materialised). Content-Encoding: gzip and zstd bodies decode
//	    transparently — schemas and doc counts are byte-identical to
//	    the identity encoding, and -max-body applies to *decompressed*
//	    bytes, so a compressed body cannot smuggle past the limit. An
//	    unsupported encoding yields 415 before any byte is read; so
//	    does an entropy-coded zstd frame mid-stream (the built-in
//	    decoder handles store-mode frames; see internal/daemon/intake).
//	    With ?equiv=, a collection created by this call folds under
//	    that equivalence instead of the daemon default; on an existing
//	    collection a disagreeing ?equiv= yields 409 before any byte is
//	    read. A collection over its ingest quota yields 429 with a
//	    Retry-After header, likewise before any body byte is read.
//	    Returns a JSON summary {collection, docs, total_docs,
//	    version}. A malformed document merges exactly the documents
//	    before it and yields 400 with the absolute body offset; the
//	    collection keeps the prefix. With -max-body N, a body
//	    exceeding N (decoded) bytes yields 413 with the same
//	    bytes-kept semantics: the documents that fit under the limit
//	    are merged and reported.
//	DELETE /v1/collections/{name}
//	    Removes the collection and its accumulator (404 when the name
//	    is unknown). The name is immediately reusable; a later ingest
//	    starts from scratch.
//	GET /v1/collections/{name}/schema?output=type|counted|jsonschema|typescript|swift
//	    The live schema in jsinfer's output formats: text/plain for
//	    type/counted/typescript/swift, application/json for jsonschema.
//	    With ?meta=1, a JSON envelope with docs/version/schema instead.
//	GET /v1/collections
//	    JSON list of collections with docs/version/error counters and
//	    each collection's pipeline stage counters.
//	GET /v1/stats
//	    Registry-wide aggregates (collections, docs, bytes, ingests,
//	    errors, rate-limited rejections, interned symbols, sealed
//	    schema nodes) plus the aggregated pipeline flight recorder:
//	    chunk/doc counters, index fast-path vs token-fallback records,
//	    parity rejections, collector publishes and fuses, and
//	    per-stage clocks.
//	GET /debug/traces
//	    The most recent finished request traces (JSON, oldest first):
//	    span trees with per-stage timings and ingest attributes.
//	GET /metrics
//	    Prometheus text exposition (format 0.0.4): ingest volume and
//	    error counters, per-route request totals and latency
//	    histograms, live registry gauges, pipeline stage counters and
//	    runtime (goroutine/heap) gauges. The ingest and pipeline
//	    figures reconcile exactly with /v1/stats once in-flight
//	    requests quiesce.
//	GET /healthz
//	    Liveness.
//
// Concurrent ingests — to one collection or many — fold through each
// collection's sharded collector tree; schema reads are lock-free
// snapshots that never block ingest. See docs/ARCHITECTURE.md for the
// collector tree and the snapshot consistency model.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/daemon/intake"
	"repro/internal/daemon/metrics"
	"repro/internal/daemon/trace"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/registry"
	"repro/internal/typelang"
)

func main() {
	addr := flag.String("addr", ":8787", "listen address")
	engine := flag.String("engine", "parametric-L", "inference engine: parametric-L or parametric-K")
	workers := flag.Int("workers", 0, "parallel chunk workers per ingest request (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "leaf collectors per collection (0 = auto)")
	tokenizer := flag.String("tokenizer", "mison", "streamed lexing machinery: mison or scan")
	mapMode := flag.String("map", "fused", "ingest map phase: fused (default), indexed or refmap")
	maxBody := flag.Int64("max-body", 0, "max ingest request body in bytes (decoded, for compressed bodies); 0 disables the limit")
	rateDocs := flag.Float64("rate-docs", 0, "default per-collection ingest quota in documents/sec; 0 disables the limit")
	rateBytes := flag.Float64("rate-bytes", 0, "default per-collection ingest quota in decoded bytes/sec; 0 disables the limit")
	logFormat := flag.String("log-format", "text", "log line format: text or json")
	slowReq := flag.Duration("slow-request", 0, "log a warning for requests slower than this (0 disables)")
	traceBuf := flag.Int("trace-buffer", trace.DefaultCapacity, "finished request traces kept for /debug/traces")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this extra listener (empty disables)")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsinferd: %v\n", err)
		os.Exit(1)
	}

	opts := registry.Options{
		Workers: *workers,
		Shards:  *shards,
		Quota:   registry.Quota{DocsPerSec: *rateDocs, BytesPerSec: *rateBytes},
	}
	switch *engine {
	case "parametric-L":
		opts.Equiv = typelang.EquivLabel
	case "parametric-K":
		opts.Equiv = typelang.EquivKind
	default:
		logger.Error("unknown engine (want parametric-L or parametric-K)", "engine", *engine)
		os.Exit(1)
	}
	switch *tokenizer {
	case "mison":
		opts.Tokenizer = core.TokenizerMison
	case "scan":
		opts.Tokenizer = core.TokenizerScan
	default:
		logger.Error("unknown tokenizer (want mison or scan)", "tokenizer", *tokenizer)
		os.Exit(1)
	}
	switch *mapMode {
	case "fused":
		opts.Map = core.MapFused
	case "indexed":
		opts.Map = core.MapIndexed
	case "refmap":
		opts.Map = core.MapReference
	default:
		logger.Error("unknown map mode (want fused, indexed or refmap)", "map", *mapMode)
		os.Exit(1)
	}

	reg := registry.New(opts)
	srv := &http.Server{Handler: newHandler(reg, handlerConfig{
		maxBody: *maxBody,
		logger:  logger,
		tracer:  trace.New(*traceBuf),
		slow:    *slowReq,
	})}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		// Drain in-flight ingests: an interrupted POST would leave the
		// client unable to tell which prefix of its body was merged.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
	}()

	if *debugAddr != "" {
		// pprof lives on its own listener, never on the API mux: an
		// operator opts in with -debug-addr (typically bound to
		// localhost) and profiling stays off the public surface.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Error("debug listen", "addr", *debugAddr, "err", err)
			os.Exit(1)
		}
		logger.Info("debug server listening (pprof)", "addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, newDebugHandler()); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server", "err", err)
			}
		}()
	}

	// Bind before announcing: the "listening" line only appears once the
	// socket is actually accepting, so scripts that wait for it (the
	// smoke test, container healthchecks) cannot race the bind — and a
	// bind failure is reported instead of a premature success line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen", "addr", *addr, "err", err)
		os.Exit(1)
	}
	logger.Info("listening", "engine", *engine, "tokenizer", *tokenizer, "addr", ln.Addr().String())
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
	<-done
}

// newLogger builds the daemon's slog logger on stderr in the requested
// line format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// handlerConfig carries the daemon handler's cross-cutting dependencies
// — the seam that lets tests run with a discarded logger and a private
// tracer.
type handlerConfig struct {
	// maxBody > 0 caps the ingest request body in *decoded* bytes (the
	// -max-body backpressure flag); 0 means unlimited.
	maxBody int64
	// logger receives the per-request and slow-request lines; nil
	// discards them.
	logger *slog.Logger
	// tracer records request traces; nil mints a private tracer.
	tracer *trace.Tracer
	// slow is the slow-request warning threshold; 0 disables it.
	slow time.Duration
}

// newHandler builds the daemon's routing table over reg, instrumented
// end to end: every route is traced and metered, and the ingest path
// feeds the volume counters /metrics serves. It is the seam the tests
// drive through httptest.
func newHandler(reg *registry.Registry, cfg handlerConfig) http.Handler {
	if cfg.logger == nil {
		cfg.logger = slog.New(slog.DiscardHandler)
	}
	if cfg.tracer == nil {
		cfg.tracer = trace.New(0)
	}
	prom := metrics.NewRegistry()
	// The ingest counters mirror the registry's own accounting, fed from
	// the same IngestResult, so after in-flight requests quiesce they
	// reconcile exactly with /v1/stats: docs/bytes include kept prefixes
	// of failed ingests, errors counts only failures that reached the
	// pipeline (not 409/429 admission rejections, which never read a
	// byte).
	ingestDocs := prom.Counter("jsinferd_ingest_docs_total",
		"Documents merged by ingest calls, kept prefixes of failed ingests included.")
	ingestBytes := prom.Counter("jsinferd_ingest_bytes_total",
		"Decoded payload bytes read by ingest calls.")
	ingestErrors := prom.Counter("jsinferd_ingest_errors_total",
		"Ingest calls that ended in a pipeline error (malformed document, over-limit or corrupt body).")
	rateLimited := prom.Counter("jsinferd_rate_limited_total",
		"Ingest requests rejected by a collection quota (429s).")
	prom.Gauge("jsinferd_registry_collections", "Live collections.",
		func() float64 { return float64(reg.Stats().Collections) })
	prom.Gauge("jsinferd_registry_docs", "Documents summarised across all collections.",
		func() float64 { return float64(reg.Stats().Docs) })
	prom.Gauge("jsinferd_registry_schema_nodes", "Sealed schema nodes across all collection schemas.",
		func() float64 { return float64(reg.Stats().SchemaNodes) })
	prom.Gauge("jsinferd_registry_symbols", "Interned key symbols in the shared symbol table.",
		func() float64 { return float64(reg.Stats().Symbols) })
	// The pipeline flight recorder, aggregated across live collections.
	// Function-backed gauges reading the same registry snapshots
	// /v1/stats serves, so the two surfaces reconcile exactly once
	// ingest quiesces (counters reset when a collection is deleted,
	// exactly like the registry's own per-collection accounting).
	pipelineGauges(prom, func() core.StatsSnapshot { return reg.Stats().Pipeline })
	// Runtime gauges back the -debug-addr pprof endpoints: the scrape
	// shows *that* goroutines or heap grew, the profiles show *why*.
	prom.Gauge("jsinferd_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	prom.Gauge("jsinferd_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	prom.Gauge("jsinferd_heap_objects", "Allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapObjects)
		})

	mux := http.NewServeMux()
	mux.Handle("GET /metrics", prom.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs("status", "ok"))
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st := reg.Stats()
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs(
			"collections", st.Collections,
			"docs", st.Docs,
			"bytes", st.Bytes,
			"ingests", st.Ingests,
			"errors", st.Errors,
			"rate_limited", st.RateLimited,
			"symbols", st.Symbols,
			"schema_nodes", st.SchemaNodes,
			"pipeline", pipelineMeta(st.Pipeline),
		))
	})
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		recent := cfg.tracer.Recent()
		items := make([]*jsonvalue.Value, len(recent))
		for i, tr := range recent {
			items[i] = traceMeta(tr.Info())
		}
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs(
			"traces", jsonvalue.NewArray(items...)))
	})
	mux.HandleFunc("GET /v1/collections", func(w http.ResponseWriter, r *http.Request) {
		snaps := reg.List()
		items := make([]*jsonvalue.Value, len(snaps))
		for i, s := range snaps {
			items[i] = snapshotMeta(s)
		}
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs(
			"collections", jsonvalue.NewArray(items...)))
	})
	mux.HandleFunc("PUT /v1/collections/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if name == "" {
			writeError(w, http.StatusBadRequest, "empty collection name")
			return
		}
		co, err := collectionOpts(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		snap, created, err := reg.Create(name, co)
		if err != nil {
			writeError(w, http.StatusConflict, err.Error())
			return
		}
		status := http.StatusOK
		if created {
			status = http.StatusCreated
		}
		writeJSON(w, status, snapshotMeta(snap).WithField("created", jsonvalue.FromGo(created)))
	})
	mux.HandleFunc("POST /v1/collections/{name}/ingest", func(w http.ResponseWriter, r *http.Request) {
		tr := traceFrom(r.Context())
		admission := tr.StartSpan("admission", nil)
		name := r.PathValue("name")
		if name == "" {
			admission.End()
			writeError(w, http.StatusBadRequest, "empty collection name")
			return
		}
		co, err := collectionOpts(r)
		admission.End()
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		// intake.Body is lazy — headers only — so quota and equivalence
		// admission below still happen before any body byte is read.
		decode := tr.StartSpan("decode", nil)
		body, err := intake.Body(w, r, cfg.maxBody)
		decode.End()
		if err != nil {
			writeError(w, http.StatusUnsupportedMediaType, err.Error())
			return
		}
		if tr != nil {
			// The registry's stage observer hangs the quota/ingest/flush
			// spans off this request's trace; the registry itself stays
			// tracing-agnostic.
			co.Observer = func(stage string) func() {
				if stage == "pipeline" {
					stage = "ingest"
				}
				return tr.StartSpan(stage, nil).End
			}
		}
		res, err := reg.IngestWith(name, body, co)
		if root := tr.Root(); root != nil {
			root.SetAttr("collection", name)
			root.SetAttr("docs", int64(res.Docs))
			root.SetAttr("bytes", res.Bytes)
			root.SetAttr("index_records", res.Stats.IndexRecords)
			root.SetAttr("fallback_records", res.Stats.FallbackRecords)
			root.SetAttr("parity_rejects", res.Stats.ParityRejects)
		}
		// Kept prefixes of failed ingests count too: the documents are
		// merged, so the counters reflect them (and reconcile with
		// /v1/stats, which sees the same IngestResult accounting).
		ingestDocs.Add(uint64(res.Docs))
		ingestBytes.Add(uint64(res.Bytes))
		if err != nil {
			var rl *registry.RateLimitError
			if errors.As(err, &rl) {
				rateLimited.Inc()
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(rl.RetryAfter)))
				writeError(w, http.StatusTooManyRequests, err.Error())
				return
			}
			if errors.Is(err, registry.ErrEquivMismatch) {
				writeError(w, http.StatusConflict, err.Error())
				return
			}
			ingestErrors.Inc()
			// The prefix before the error is merged and kept; report
			// both the failure and how far ingest got. An over-limit
			// body surfaces as 413 with exactly the malformed-doc
			// bytes-kept semantics: the documents that fit are merged —
			// the limit counts decoded bytes, so compressed bodies get
			// identical treatment. An entropy-coded zstd frame the
			// built-in decoder gates maps to 415: re-send store-mode
			// zstd, gzip or identity.
			status := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			switch {
			case errors.As(err, &tooBig):
				status = http.StatusRequestEntityTooLarge
			case errors.Is(err, intake.ErrZstdCompressedBlock):
				status = http.StatusUnsupportedMediaType
			}
			writeJSON(w, status, jsonvalue.ObjectFromPairs(
				"error", err.Error(),
				"collection", res.Collection,
				"docs", res.Docs,
				"total_docs", res.TotalDocs,
				"version", int64(res.Version),
			))
			return
		}
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs(
			"collection", res.Collection,
			"docs", res.Docs,
			"total_docs", res.TotalDocs,
			"version", int64(res.Version),
		))
	})
	mux.HandleFunc("DELETE /v1/collections/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if !reg.Delete(name) {
			writeError(w, http.StatusNotFound, "unknown collection "+name)
			return
		}
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs(
			"collection", name,
			"deleted", true,
		))
	})
	mux.HandleFunc("GET /v1/collections/{name}/schema", func(w http.ResponseWriter, r *http.Request) {
		snap, ok := reg.Get(r.PathValue("name"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown collection "+r.PathValue("name"))
			return
		}
		output := r.URL.Query().Get("output")
		if output == "" {
			output = "type"
		}
		if r.URL.Query().Get("meta") != "" {
			rendered, err := renderSchema(snap.Type, output)
			if err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
			meta := snapshotMeta(snap).WithField("schema", jsonvalue.FromGo(rendered))
			writeJSON(w, http.StatusOK, meta)
			return
		}
		switch output {
		case "jsonschema":
			writeJSON(w, http.StatusOK, core.TypeToJSONSchema(snap.Type))
		default:
			rendered, err := renderSchema(snap.Type, output)
			if err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			s, _ := rendered.(string)
			fmt.Fprintln(w, s)
		}
	})
	// Trace outermost: it clones the request to attach the trace
	// context, and the mux records the matched pattern on that clone, so
	// everything reading r.Pattern afterwards must sit inside the clone.
	return traceRequests(cfg, metrics.NewHTTP(prom, "jsinferd").Wrap(mux))
}

// newDebugHandler is the -debug-addr surface: net/http/pprof wired onto
// an explicit mux (never http.DefaultServeMux, never the API mux).
func newDebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// traceKey carries the request's *trace.Trace through the context.
type traceKey struct{}

// traceFrom returns the request's trace, or nil outside the middleware
// (trace.Trace methods are nil-tolerant, so handlers never check).
func traceFrom(ctx context.Context) *trace.Trace {
	tr, _ := ctx.Value(traceKey{}).(*trace.Trace)
	return tr
}

// traceRequests wraps next so every request runs under a span: an
// incoming W3C traceparent joins the caller's trace, the response
// carries the daemon's own traceparent, the finished trace lands in the
// /debug/traces ring, and each request logs one structured line
// (warning-level past the -slow-request threshold).
func traceRequests(cfg handlerConfig, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		parent, _ := trace.ParseTraceparent(r.Header.Get("Traceparent"))
		tr := cfg.tracer.StartTrace(r.Method+" "+r.URL.Path, parent)
		w.Header().Set("Traceparent", tr.Root().Context().Traceparent())
		sw := &statusRecorder{ResponseWriter: w}
		r2 := r.WithContext(context.WithValue(r.Context(), traceKey{}, tr))
		next.ServeHTTP(sw, r2)
		// A matched pattern already carries its method ("GET /healthz");
		// only the unmatched bucket needs it prefixed.
		route := r2.Pattern
		name := route
		if route == "" {
			route = "unmatched"
			name = r.Method + " unmatched"
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		root := tr.Root()
		root.SetName(name)
		root.SetAttr("method", r.Method)
		root.SetAttr("route", route)
		root.SetAttr("status", int64(status))
		tr.Finish()
		dur := tr.Duration()
		attrs := []any{
			"method", r.Method,
			"route", route,
			"status", status,
			"duration_ms", float64(dur.Nanoseconds()) / 1e6,
			"trace_id", tr.ID().String(),
		}
		cfg.logger.Info("request", attrs...)
		if cfg.slow > 0 && dur >= cfg.slow {
			cfg.logger.Warn("slow request",
				append(attrs, "threshold_ms", float64(cfg.slow.Nanoseconds())/1e6)...)
		}
	})
}

// statusRecorder records the status code a handler wrote, for the trace
// attributes and the request log line. Unwrap keeps
// http.ResponseController features reachable.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// collectionOpts parses the per-collection override parameters of a
// create or ingest request: ?equiv=K|L (the jsinfer engine names
// parametric-K/parametric-L are accepted too) pins the collection's
// merge equivalence, ?quota=docs=N,bytes=N its ingest rate limit (a
// bare ?quota= or all-zero terms lift the limit).
func collectionOpts(r *http.Request) (registry.CollectionOptions, error) {
	var co registry.CollectionOptions
	switch q := r.URL.Query().Get("equiv"); q {
	case "":
	case "K", "k", "parametric-K":
		e := typelang.EquivKind
		co.Equiv = &e
	case "L", "l", "parametric-L":
		e := typelang.EquivLabel
		co.Equiv = &e
	default:
		return co, fmt.Errorf("unknown equiv %q (want K or L)", q)
	}
	if r.URL.Query().Has("quota") {
		q, err := parseQuota(r.URL.Query().Get("quota"))
		if err != nil {
			return co, err
		}
		co.Quota = &q
	}
	return co, nil
}

// parseQuota parses the ?quota= override: comma-separated docs=N and
// bytes=N terms, each a non-negative per-second rate (0 = unlimited).
// The empty string is the all-zero quota — ?quota= lifts the limit.
func parseQuota(s string) (registry.Quota, error) {
	var q registry.Quota
	if s == "" {
		return q, nil
	}
	for _, term := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(term, "=")
		if !ok {
			return q, fmt.Errorf("bad quota term %q (want docs=N or bytes=N)", term)
		}
		rate, err := strconv.ParseFloat(v, 64)
		if err != nil || rate < 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
			return q, fmt.Errorf("bad quota rate %q (want a non-negative number)", term)
		}
		switch k {
		case "docs":
			q.DocsPerSec = rate
		case "bytes":
			q.BytesPerSec = rate
		default:
			return q, fmt.Errorf("unknown quota key %q (want docs or bytes)", k)
		}
	}
	return q, nil
}

// retryAfterSeconds renders a recovery delay as a Retry-After value:
// whole seconds, rounded up so the advertised wait is never too short,
// and at least 1 (Retry-After: 0 invites an immediate, doomed retry).
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// renderSchema renders t in one of jsinfer's output formats: a string
// for the text forms, a *jsonvalue.Value for jsonschema.
func renderSchema(t *core.Type, output string) (any, error) {
	switch output {
	case "type":
		return t.String(), nil
	case "counted":
		return t.StringCounted(), nil
	case "typescript":
		return core.TypeToTypeScript("Root", t), nil
	case "swift":
		return core.TypeToSwift("Root", t), nil
	case "jsonschema":
		return core.TypeToJSONSchema(t), nil
	default:
		return nil, fmt.Errorf("unknown output %q (want type, counted, jsonschema, typescript or swift)", output)
	}
}

// pipelineGauges registers the pipeline flight recorder's counters and
// stage clocks as function-backed families over snap — the /metrics
// face of the same numbers /v1/stats serves.
func pipelineGauges(prom *metrics.Registry, snap func() core.StatsSnapshot) {
	type row struct {
		name, help string
		get        func(core.StatsSnapshot) float64
	}
	rows := []row{
		{"jsinferd_pipeline_chunks_split_total", "Document-aligned byte chunks emitted to ingest worker pools.",
			func(s core.StatsSnapshot) float64 { return float64(s.ChunksSplit) }},
		{"jsinferd_pipeline_bytes_lexed_total", "Payload bytes handed to the map phase.",
			func(s core.StatsSnapshot) float64 { return float64(s.BytesLexed) }},
		{"jsinferd_pipeline_docs_absorbed_total", "Documents absorbed by the map phase (kept prefixes of failed ingests included).",
			func(s core.StatsSnapshot) float64 { return float64(s.DocsAbsorbed) }},
		{"jsinferd_pipeline_index_records_total", "Records absorbed entirely off the mison structural index.",
			func(s core.StatsSnapshot) float64 { return float64(s.IndexRecords) }},
		{"jsinferd_pipeline_fallback_records_total", "Records the index walk delegated to the token walker.",
			func(s core.StatsSnapshot) float64 { return float64(s.FallbackRecords) }},
		{"jsinferd_pipeline_parity_rejects_total", "Chunks the structural index rejected outright (odd quote parity).",
			func(s core.StatsSnapshot) float64 { return float64(s.ParityRejects) }},
		{"jsinferd_pipeline_scan_delegations_total", "Tokens the mison fast paths handed to the reference scanner.",
			func(s core.StatsSnapshot) float64 { return float64(s.ScanDelegations) }},
		{"jsinferd_pipeline_batch_publishes_total", "Collector-leaf publishes of sealed partials.",
			func(s core.StatsSnapshot) float64 { return float64(s.BatchPublishes) }},
		{"jsinferd_pipeline_root_fuses_total", "Root fuse passes over collector leaf partials.",
			func(s core.StatsSnapshot) float64 { return float64(s.RootFuses) }},
		{"jsinferd_pipeline_seals_total", "Accumulator seals across map, leaf publish and root fuse.",
			func(s core.StatsSnapshot) float64 { return float64(s.Seals) }},
		{"jsinferd_pipeline_bytes_aliased_total", "Chunk bytes emitted zero-copy, aliasing the input buffer.",
			func(s core.StatsSnapshot) float64 { return float64(s.BytesAliased) }},
		{"jsinferd_pipeline_bytes_copied_total", "Bytes moved during reader-path buffer compaction.",
			func(s core.StatsSnapshot) float64 { return float64(s.BytesCopied) }},
		{"jsinferd_pipeline_buffers_recycled_total", "Chunk arrays reacquired from the pool instead of allocated.",
			func(s core.StatsSnapshot) float64 { return float64(s.BuffersRecycled) }},
		{"jsinferd_pipeline_mmap_inputs_total", "Inputs served through a memory mapping.",
			func(s core.StatsSnapshot) float64 { return float64(s.MmapInputs) }},
		{"jsinferd_pipeline_reader_inputs_total", "Inputs served through the copying io.Reader path.",
			func(s core.StatsSnapshot) float64 { return float64(s.ReaderInputs) }},
		{"jsinferd_pipeline_read_seconds_total", "Reader-goroutine time blocked reading request bodies.",
			func(s core.StatsSnapshot) float64 { return float64(s.ReadNanos) / 1e9 }},
		{"jsinferd_pipeline_split_seconds_total", "Reader-goroutine time finding chunk boundaries.",
			func(s core.StatsSnapshot) float64 { return float64(s.SplitNanos) / 1e9 }},
		{"jsinferd_pipeline_map_seconds_total", "Worker time lexing and absorbing chunks.",
			func(s core.StatsSnapshot) float64 { return float64(s.MapNanos) / 1e9 }},
		{"jsinferd_pipeline_reduce_seconds_total", "Collector-leaf time absorbing committed results.",
			func(s core.StatsSnapshot) float64 { return float64(s.ReduceNanos) / 1e9 }},
		{"jsinferd_pipeline_fuse_seconds_total", "Root time fusing leaf partials.",
			func(s core.StatsSnapshot) float64 { return float64(s.FuseNanos) / 1e9 }},
	}
	for _, r := range rows {
		get := r.get
		prom.Gauge(r.name, r.help, func() float64 { return get(snap()) })
	}
}

// pipelineMeta is the JSON envelope of a pipeline stats snapshot — the
// shape shared by /v1/stats ("pipeline") and each collection's entry in
// /v1/collections.
func pipelineMeta(p core.StatsSnapshot) *jsonvalue.Value {
	return jsonvalue.ObjectFromPairs(
		"chunks_split", p.ChunksSplit,
		"bytes_lexed", p.BytesLexed,
		"docs_absorbed", p.DocsAbsorbed,
		"index_records", p.IndexRecords,
		"fallback_records", p.FallbackRecords,
		"parity_rejects", p.ParityRejects,
		"scan_delegations", p.ScanDelegations,
		"batch_publishes", p.BatchPublishes,
		"root_fuses", p.RootFuses,
		"seals", p.Seals,
		"bytes_aliased", p.BytesAliased,
		"bytes_copied", p.BytesCopied,
		"buffers_recycled", p.BuffersRecycled,
		"mmap_inputs", p.MmapInputs,
		"reader_inputs", p.ReaderInputs,
		"read_nanos", p.ReadNanos,
		"split_nanos", p.SplitNanos,
		"map_nanos", p.MapNanos,
		"reduce_nanos", p.ReduceNanos,
		"fuse_nanos", p.FuseNanos,
	)
}

// traceMeta is the JSON envelope of one finished trace for
// /debug/traces: the root duration up front, then every span with its
// offsets and attributes.
func traceMeta(info trace.TraceInfo) *jsonvalue.Value {
	spans := make([]*jsonvalue.Value, len(info.Spans))
	var start time.Time
	if len(info.Spans) > 0 {
		start = info.Spans[0].Start
	}
	for i, sp := range info.Spans {
		attrs := make(map[string]any, len(sp.Attrs))
		for _, a := range sp.Attrs {
			attrs[a.Key] = a.Value
		}
		spans[i] = jsonvalue.ObjectFromPairs(
			"name", sp.Name,
			"span_id", sp.SpanID,
			"parent_id", sp.ParentID,
			"offset_us", sp.Start.Sub(start).Microseconds(),
			"duration_us", sp.Duration.Microseconds(),
			"attrs", attrs,
		)
	}
	meta := jsonvalue.ObjectFromPairs(
		"trace_id", info.TraceID,
		"remote", info.Remote,
		"spans", jsonvalue.NewArray(spans...),
	)
	if len(info.Spans) > 0 {
		meta = meta.WithField("name", jsonvalue.FromGo(info.Spans[0].Name)).
			WithField("start", jsonvalue.FromGo(start.UTC().Format(time.RFC3339Nano))).
			WithField("duration_us", jsonvalue.FromGo(info.Spans[0].Duration.Microseconds()))
	}
	return meta
}

// snapshotMeta is the JSON envelope of one collection snapshot, minus
// the schema itself.
func snapshotMeta(s registry.Snapshot) *jsonvalue.Value {
	return jsonvalue.ObjectFromPairs(
		"name", s.Name,
		"equiv", s.Equiv.String(),
		"docs", s.Docs,
		"bytes", s.Bytes,
		"version", int64(s.Version),
		"ingests", s.Ingests,
		"errors", s.Errors,
		"rate_limited", s.RateLimited,
		"quota", s.Quota.String(),
		"schema_nodes", s.Type.Size(),
		"pipeline", pipelineMeta(s.Pipeline),
	)
}

func writeJSON(w http.ResponseWriter, status int, v *jsonvalue.Value) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(jsontext.MarshalIndent(v, "  "))
	w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, jsonvalue.ObjectFromPairs("error", msg))
}
