// Command jsinferd is the schema-inference ingest daemon: a long-running
// HTTP service over the live-merge registry (internal/registry). Clients
// stream NDJSON at named collections and read back the monotonically
// growing schema at any time, in any of jsinfer's output formats — the
// batch CLI turned into a service, with byte-identical schemas.
//
// Usage:
//
//	jsinferd [-addr :8787] [-engine parametric-L|parametric-K]
//	         [-workers N] [-shards N] [-tokenizer mison|scan]
//	         [-max-body N] [-rate-docs N] [-rate-bytes N]
//
// API:
//
//	PUT /v1/collections/{name}[?equiv=K|L][&quota=docs=N,bytes=N]
//	    Creates the collection without ingesting — under the given
//	    merge equivalence when ?equiv= is set, the daemon default
//	    otherwise. 201 on creation, 200 when it already exists with a
//	    compatible equivalence, 409 when ?equiv= disagrees with the
//	    equivalence the collection was created under. ?quota= pins a
//	    per-collection ingest rate limit overriding the daemon's
//	    -rate-docs/-rate-bytes defaults (0 or an empty value lifts the
//	    limit); on an existing collection it re-targets the live quota
//	    in place.
//	POST /v1/collections/{name}/ingest[?equiv=K|L][&quota=...]
//	    Body: NDJSON or concatenated JSON, streamed straight into the
//	    chunked token pipeline (bounded memory; the body is never
//	    materialised). Content-Encoding: gzip and zstd bodies decode
//	    transparently — schemas and doc counts are byte-identical to
//	    the identity encoding, and -max-body applies to *decompressed*
//	    bytes, so a compressed body cannot smuggle past the limit. An
//	    unsupported encoding yields 415 before any byte is read; so
//	    does an entropy-coded zstd frame mid-stream (the built-in
//	    decoder handles store-mode frames; see internal/daemon/intake).
//	    With ?equiv=, a collection created by this call folds under
//	    that equivalence instead of the daemon default; on an existing
//	    collection a disagreeing ?equiv= yields 409 before any byte is
//	    read. A collection over its ingest quota yields 429 with a
//	    Retry-After header, likewise before any body byte is read.
//	    Returns a JSON summary {collection, docs, total_docs,
//	    version}. A malformed document merges exactly the documents
//	    before it and yields 400 with the absolute body offset; the
//	    collection keeps the prefix. With -max-body N, a body
//	    exceeding N (decoded) bytes yields 413 with the same
//	    bytes-kept semantics: the documents that fit under the limit
//	    are merged and reported.
//	DELETE /v1/collections/{name}
//	    Removes the collection and its accumulator (404 when the name
//	    is unknown). The name is immediately reusable; a later ingest
//	    starts from scratch.
//	GET /v1/collections/{name}/schema?output=type|counted|jsonschema|typescript|swift
//	    The live schema in jsinfer's output formats: text/plain for
//	    type/counted/typescript/swift, application/json for jsonschema.
//	    With ?meta=1, a JSON envelope with docs/version/schema instead.
//	GET /v1/collections
//	    JSON list of collections with docs/version/error counters.
//	GET /v1/stats
//	    Registry-wide aggregates (collections, docs, bytes, ingests,
//	    errors, rate-limited rejections, interned symbols, sealed
//	    schema nodes).
//	GET /metrics
//	    Prometheus text exposition (format 0.0.4): ingest volume and
//	    error counters, per-route request totals and latency
//	    histograms, and live registry gauges. The ingest counters
//	    reconcile exactly with /v1/stats once in-flight requests
//	    quiesce.
//	GET /healthz
//	    Liveness.
//
// Concurrent ingests — to one collection or many — fold through each
// collection's sharded collector tree; schema reads are lock-free
// snapshots that never block ingest. See docs/ARCHITECTURE.md for the
// collector tree and the snapshot consistency model.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/daemon/intake"
	"repro/internal/daemon/metrics"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/registry"
	"repro/internal/typelang"
)

func main() {
	addr := flag.String("addr", ":8787", "listen address")
	engine := flag.String("engine", "parametric-L", "inference engine: parametric-L or parametric-K")
	workers := flag.Int("workers", 0, "parallel chunk workers per ingest request (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "leaf collectors per collection (0 = auto)")
	tokenizer := flag.String("tokenizer", "mison", "streamed lexing machinery: mison or scan")
	maxBody := flag.Int64("max-body", 0, "max ingest request body in bytes (decoded, for compressed bodies); 0 disables the limit")
	rateDocs := flag.Float64("rate-docs", 0, "default per-collection ingest quota in documents/sec; 0 disables the limit")
	rateBytes := flag.Float64("rate-bytes", 0, "default per-collection ingest quota in decoded bytes/sec; 0 disables the limit")
	flag.Parse()

	opts := registry.Options{
		Workers: *workers,
		Shards:  *shards,
		Quota:   registry.Quota{DocsPerSec: *rateDocs, BytesPerSec: *rateBytes},
	}
	switch *engine {
	case "parametric-L":
		opts.Equiv = typelang.EquivLabel
	case "parametric-K":
		opts.Equiv = typelang.EquivKind
	default:
		log.Fatalf("jsinferd: unknown engine %q (want parametric-L or parametric-K)", *engine)
	}
	switch *tokenizer {
	case "mison":
		opts.Tokenizer = core.TokenizerMison
	case "scan":
		opts.Tokenizer = core.TokenizerScan
	default:
		log.Fatalf("jsinferd: unknown tokenizer %q (want mison or scan)", *tokenizer)
	}

	reg := registry.New(opts)
	srv := &http.Server{Addr: *addr, Handler: newHandler(reg, *maxBody)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Println("jsinferd: shutting down")
		// Drain in-flight ingests: an interrupted POST would leave the
		// client unable to tell which prefix of its body was merged.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("jsinferd: shutdown: %v", err)
		}
	}()
	log.Printf("jsinferd: engine %s, tokenizer %s, listening on %s", *engine, *tokenizer, *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("jsinferd: %v", err)
	}
	<-done
}

// newHandler builds the daemon's routing table over reg, instrumented
// end to end: every route is metered by the metrics middleware, and the
// ingest path feeds the volume counters /metrics serves. It is the seam
// the tests drive through httptest. maxBody > 0 caps the ingest request
// body in *decoded* bytes (the -max-body backpressure flag); 0 means
// unlimited.
func newHandler(reg *registry.Registry, maxBody int64) http.Handler {
	prom := metrics.NewRegistry()
	// The ingest counters mirror the registry's own accounting, fed from
	// the same IngestResult, so after in-flight requests quiesce they
	// reconcile exactly with /v1/stats: docs/bytes include kept prefixes
	// of failed ingests, errors counts only failures that reached the
	// pipeline (not 409/429 admission rejections, which never read a
	// byte).
	ingestDocs := prom.Counter("jsinferd_ingest_docs_total",
		"Documents merged by ingest calls, kept prefixes of failed ingests included.")
	ingestBytes := prom.Counter("jsinferd_ingest_bytes_total",
		"Decoded payload bytes read by ingest calls.")
	ingestErrors := prom.Counter("jsinferd_ingest_errors_total",
		"Ingest calls that ended in a pipeline error (malformed document, over-limit or corrupt body).")
	rateLimited := prom.Counter("jsinferd_rate_limited_total",
		"Ingest requests rejected by a collection quota (429s).")
	prom.Gauge("jsinferd_registry_collections", "Live collections.",
		func() float64 { return float64(reg.Stats().Collections) })
	prom.Gauge("jsinferd_registry_docs", "Documents summarised across all collections.",
		func() float64 { return float64(reg.Stats().Docs) })
	prom.Gauge("jsinferd_registry_schema_nodes", "Sealed schema nodes across all collection schemas.",
		func() float64 { return float64(reg.Stats().SchemaNodes) })
	prom.Gauge("jsinferd_registry_symbols", "Interned key symbols in the shared symbol table.",
		func() float64 { return float64(reg.Stats().Symbols) })

	mux := http.NewServeMux()
	mux.Handle("GET /metrics", prom.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs("status", "ok"))
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st := reg.Stats()
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs(
			"collections", st.Collections,
			"docs", st.Docs,
			"bytes", st.Bytes,
			"ingests", st.Ingests,
			"errors", st.Errors,
			"rate_limited", st.RateLimited,
			"symbols", st.Symbols,
			"schema_nodes", st.SchemaNodes,
		))
	})
	mux.HandleFunc("GET /v1/collections", func(w http.ResponseWriter, r *http.Request) {
		snaps := reg.List()
		items := make([]*jsonvalue.Value, len(snaps))
		for i, s := range snaps {
			items[i] = snapshotMeta(s)
		}
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs(
			"collections", jsonvalue.NewArray(items...)))
	})
	mux.HandleFunc("PUT /v1/collections/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if name == "" {
			writeError(w, http.StatusBadRequest, "empty collection name")
			return
		}
		co, err := collectionOpts(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		snap, created, err := reg.Create(name, co)
		if err != nil {
			writeError(w, http.StatusConflict, err.Error())
			return
		}
		status := http.StatusOK
		if created {
			status = http.StatusCreated
		}
		writeJSON(w, status, snapshotMeta(snap).WithField("created", jsonvalue.FromGo(created)))
	})
	mux.HandleFunc("POST /v1/collections/{name}/ingest", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if name == "" {
			writeError(w, http.StatusBadRequest, "empty collection name")
			return
		}
		co, err := collectionOpts(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		// intake.Body is lazy — headers only — so quota and equivalence
		// admission below still happen before any body byte is read.
		body, err := intake.Body(w, r, maxBody)
		if err != nil {
			writeError(w, http.StatusUnsupportedMediaType, err.Error())
			return
		}
		res, err := reg.IngestWith(name, body, co)
		// Kept prefixes of failed ingests count too: the documents are
		// merged, so the counters reflect them (and reconcile with
		// /v1/stats, which sees the same IngestResult accounting).
		ingestDocs.Add(uint64(res.Docs))
		ingestBytes.Add(uint64(res.Bytes))
		if err != nil {
			var rl *registry.RateLimitError
			if errors.As(err, &rl) {
				rateLimited.Inc()
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(rl.RetryAfter)))
				writeError(w, http.StatusTooManyRequests, err.Error())
				return
			}
			if errors.Is(err, registry.ErrEquivMismatch) {
				writeError(w, http.StatusConflict, err.Error())
				return
			}
			ingestErrors.Inc()
			// The prefix before the error is merged and kept; report
			// both the failure and how far ingest got. An over-limit
			// body surfaces as 413 with exactly the malformed-doc
			// bytes-kept semantics: the documents that fit are merged —
			// the limit counts decoded bytes, so compressed bodies get
			// identical treatment. An entropy-coded zstd frame the
			// built-in decoder gates maps to 415: re-send store-mode
			// zstd, gzip or identity.
			status := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			switch {
			case errors.As(err, &tooBig):
				status = http.StatusRequestEntityTooLarge
			case errors.Is(err, intake.ErrZstdCompressedBlock):
				status = http.StatusUnsupportedMediaType
			}
			writeJSON(w, status, jsonvalue.ObjectFromPairs(
				"error", err.Error(),
				"collection", res.Collection,
				"docs", res.Docs,
				"total_docs", res.TotalDocs,
				"version", int64(res.Version),
			))
			return
		}
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs(
			"collection", res.Collection,
			"docs", res.Docs,
			"total_docs", res.TotalDocs,
			"version", int64(res.Version),
		))
	})
	mux.HandleFunc("DELETE /v1/collections/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if !reg.Delete(name) {
			writeError(w, http.StatusNotFound, "unknown collection "+name)
			return
		}
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs(
			"collection", name,
			"deleted", true,
		))
	})
	mux.HandleFunc("GET /v1/collections/{name}/schema", func(w http.ResponseWriter, r *http.Request) {
		snap, ok := reg.Get(r.PathValue("name"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown collection "+r.PathValue("name"))
			return
		}
		output := r.URL.Query().Get("output")
		if output == "" {
			output = "type"
		}
		if r.URL.Query().Get("meta") != "" {
			rendered, err := renderSchema(snap.Type, output)
			if err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
			meta := snapshotMeta(snap).WithField("schema", jsonvalue.FromGo(rendered))
			writeJSON(w, http.StatusOK, meta)
			return
		}
		switch output {
		case "jsonschema":
			writeJSON(w, http.StatusOK, core.TypeToJSONSchema(snap.Type))
		default:
			rendered, err := renderSchema(snap.Type, output)
			if err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			s, _ := rendered.(string)
			fmt.Fprintln(w, s)
		}
	})
	return metrics.NewHTTP(prom, "jsinferd").Wrap(mux)
}

// collectionOpts parses the per-collection override parameters of a
// create or ingest request: ?equiv=K|L (the jsinfer engine names
// parametric-K/parametric-L are accepted too) pins the collection's
// merge equivalence, ?quota=docs=N,bytes=N its ingest rate limit (a
// bare ?quota= or all-zero terms lift the limit).
func collectionOpts(r *http.Request) (registry.CollectionOptions, error) {
	var co registry.CollectionOptions
	switch q := r.URL.Query().Get("equiv"); q {
	case "":
	case "K", "k", "parametric-K":
		e := typelang.EquivKind
		co.Equiv = &e
	case "L", "l", "parametric-L":
		e := typelang.EquivLabel
		co.Equiv = &e
	default:
		return co, fmt.Errorf("unknown equiv %q (want K or L)", q)
	}
	if r.URL.Query().Has("quota") {
		q, err := parseQuota(r.URL.Query().Get("quota"))
		if err != nil {
			return co, err
		}
		co.Quota = &q
	}
	return co, nil
}

// parseQuota parses the ?quota= override: comma-separated docs=N and
// bytes=N terms, each a non-negative per-second rate (0 = unlimited).
// The empty string is the all-zero quota — ?quota= lifts the limit.
func parseQuota(s string) (registry.Quota, error) {
	var q registry.Quota
	if s == "" {
		return q, nil
	}
	for _, term := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(term, "=")
		if !ok {
			return q, fmt.Errorf("bad quota term %q (want docs=N or bytes=N)", term)
		}
		rate, err := strconv.ParseFloat(v, 64)
		if err != nil || rate < 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
			return q, fmt.Errorf("bad quota rate %q (want a non-negative number)", term)
		}
		switch k {
		case "docs":
			q.DocsPerSec = rate
		case "bytes":
			q.BytesPerSec = rate
		default:
			return q, fmt.Errorf("unknown quota key %q (want docs or bytes)", k)
		}
	}
	return q, nil
}

// retryAfterSeconds renders a recovery delay as a Retry-After value:
// whole seconds, rounded up so the advertised wait is never too short,
// and at least 1 (Retry-After: 0 invites an immediate, doomed retry).
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// renderSchema renders t in one of jsinfer's output formats: a string
// for the text forms, a *jsonvalue.Value for jsonschema.
func renderSchema(t *core.Type, output string) (any, error) {
	switch output {
	case "type":
		return t.String(), nil
	case "counted":
		return t.StringCounted(), nil
	case "typescript":
		return core.TypeToTypeScript("Root", t), nil
	case "swift":
		return core.TypeToSwift("Root", t), nil
	case "jsonschema":
		return core.TypeToJSONSchema(t), nil
	default:
		return nil, fmt.Errorf("unknown output %q (want type, counted, jsonschema, typescript or swift)", output)
	}
}

// snapshotMeta is the JSON envelope of one collection snapshot, minus
// the schema itself.
func snapshotMeta(s registry.Snapshot) *jsonvalue.Value {
	return jsonvalue.ObjectFromPairs(
		"name", s.Name,
		"equiv", s.Equiv.String(),
		"docs", s.Docs,
		"bytes", s.Bytes,
		"version", int64(s.Version),
		"ingests", s.Ingests,
		"errors", s.Errors,
		"rate_limited", s.RateLimited,
		"quota", s.Quota.String(),
		"schema_nodes", s.Type.Size(),
	)
}

func writeJSON(w http.ResponseWriter, status int, v *jsonvalue.Value) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(jsontext.MarshalIndent(v, "  "))
	w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, jsonvalue.ObjectFromPairs("error", msg))
}
