// Command jsinferd is the schema-inference ingest daemon: a long-running
// HTTP service over the live-merge registry (internal/registry). Clients
// stream NDJSON at named collections and read back the monotonically
// growing schema at any time, in any of jsinfer's output formats — the
// batch CLI turned into a service, with byte-identical schemas.
//
// Usage:
//
//	jsinferd [-addr :8787] [-engine parametric-L|parametric-K]
//	         [-workers N] [-shards N] [-tokenizer mison|scan]
//	         [-max-body N]
//
// API:
//
//	PUT /v1/collections/{name}[?equiv=K|L]
//	    Creates the collection without ingesting — under the given
//	    merge equivalence when ?equiv= is set, the daemon default
//	    otherwise. 201 on creation, 200 when it already exists with a
//	    compatible equivalence, 409 when ?equiv= disagrees with the
//	    equivalence the collection was created under.
//	POST /v1/collections/{name}/ingest[?equiv=K|L]
//	    Body: NDJSON or concatenated JSON, streamed straight into the
//	    chunked token pipeline (bounded memory; the body is never
//	    materialised). With ?equiv=, a collection created by this call
//	    folds under that equivalence instead of the daemon default; on
//	    an existing collection a disagreeing ?equiv= yields 409 before
//	    any byte is read. Returns a JSON summary {collection, docs,
//	    total_docs, version}. A malformed document merges exactly the
//	    documents before it and yields 400 with the absolute body
//	    offset; the collection keeps the prefix. With -max-body N, a
//	    body exceeding N bytes yields 413 with the same bytes-kept
//	    semantics: the documents that fit under the limit are merged
//	    and reported.
//	DELETE /v1/collections/{name}
//	    Removes the collection and its accumulator (404 when the name
//	    is unknown). The name is immediately reusable; a later ingest
//	    starts from scratch.
//	GET /v1/collections/{name}/schema?output=type|counted|jsonschema|typescript|swift
//	    The live schema in jsinfer's output formats: text/plain for
//	    type/counted/typescript/swift, application/json for jsonschema.
//	    With ?meta=1, a JSON envelope with docs/version/schema instead.
//	GET /v1/collections
//	    JSON list of collections with docs/version/error counters.
//	GET /v1/stats
//	    Registry-wide aggregates (collections, docs, ingests, errors,
//	    interned symbols, sealed schema nodes).
//	GET /healthz
//	    Liveness.
//
// Concurrent ingests — to one collection or many — fold through each
// collection's sharded collector tree; schema reads are lock-free
// snapshots that never block ingest. See docs/ARCHITECTURE.md for the
// collector tree and the snapshot consistency model.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
	"repro/internal/registry"
	"repro/internal/typelang"
)

func main() {
	addr := flag.String("addr", ":8787", "listen address")
	engine := flag.String("engine", "parametric-L", "inference engine: parametric-L or parametric-K")
	workers := flag.Int("workers", 0, "parallel chunk workers per ingest request (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "leaf collectors per collection (0 = auto)")
	tokenizer := flag.String("tokenizer", "mison", "streamed lexing machinery: mison or scan")
	maxBody := flag.Int64("max-body", 0, "max ingest request body in bytes; 0 disables the limit")
	flag.Parse()

	opts := registry.Options{Workers: *workers, Shards: *shards}
	switch *engine {
	case "parametric-L":
		opts.Equiv = typelang.EquivLabel
	case "parametric-K":
		opts.Equiv = typelang.EquivKind
	default:
		log.Fatalf("jsinferd: unknown engine %q (want parametric-L or parametric-K)", *engine)
	}
	switch *tokenizer {
	case "mison":
		opts.Tokenizer = core.TokenizerMison
	case "scan":
		opts.Tokenizer = core.TokenizerScan
	default:
		log.Fatalf("jsinferd: unknown tokenizer %q (want mison or scan)", *tokenizer)
	}

	reg := registry.New(opts)
	srv := &http.Server{Addr: *addr, Handler: newHandler(reg, *maxBody)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Println("jsinferd: shutting down")
		// Drain in-flight ingests: an interrupted POST would leave the
		// client unable to tell which prefix of its body was merged.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("jsinferd: shutdown: %v", err)
		}
	}()
	log.Printf("jsinferd: engine %s, tokenizer %s, listening on %s", *engine, *tokenizer, *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("jsinferd: %v", err)
	}
	<-done
}

// newHandler builds the daemon's routing table over reg. It is the seam
// the tests drive through httptest. maxBody > 0 caps the ingest request
// body (the -max-body backpressure flag); 0 means unlimited.
func newHandler(reg *registry.Registry, maxBody int64) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs("status", "ok"))
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st := reg.Stats()
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs(
			"collections", st.Collections,
			"docs", st.Docs,
			"ingests", st.Ingests,
			"errors", st.Errors,
			"symbols", st.Symbols,
			"schema_nodes", st.SchemaNodes,
		))
	})
	mux.HandleFunc("GET /v1/collections", func(w http.ResponseWriter, r *http.Request) {
		snaps := reg.List()
		items := make([]*jsonvalue.Value, len(snaps))
		for i, s := range snaps {
			items[i] = snapshotMeta(s)
		}
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs(
			"collections", jsonvalue.NewArray(items...)))
	})
	mux.HandleFunc("PUT /v1/collections/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if name == "" {
			writeError(w, http.StatusBadRequest, "empty collection name")
			return
		}
		co, err := collectionOpts(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		snap, created, err := reg.Create(name, co)
		if err != nil {
			writeError(w, http.StatusConflict, err.Error())
			return
		}
		status := http.StatusOK
		if created {
			status = http.StatusCreated
		}
		writeJSON(w, status, snapshotMeta(snap).WithField("created", jsonvalue.FromGo(created)))
	})
	mux.HandleFunc("POST /v1/collections/{name}/ingest", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if name == "" {
			writeError(w, http.StatusBadRequest, "empty collection name")
			return
		}
		co, err := collectionOpts(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		body := r.Body
		if maxBody > 0 {
			body = http.MaxBytesReader(w, r.Body, maxBody)
		}
		res, err := reg.IngestWith(name, body, co)
		if err != nil {
			if errors.Is(err, registry.ErrEquivMismatch) {
				writeError(w, http.StatusConflict, err.Error())
				return
			}
			// The prefix before the error is merged and kept; report
			// both the failure and how far ingest got. An over-limit
			// body surfaces as 413 with exactly the malformed-doc
			// bytes-kept semantics: the documents that fit are merged.
			status := http.StatusBadRequest
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				status = http.StatusRequestEntityTooLarge
			}
			writeJSON(w, status, jsonvalue.ObjectFromPairs(
				"error", err.Error(),
				"collection", res.Collection,
				"docs", res.Docs,
				"total_docs", res.TotalDocs,
				"version", int64(res.Version),
			))
			return
		}
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs(
			"collection", res.Collection,
			"docs", res.Docs,
			"total_docs", res.TotalDocs,
			"version", int64(res.Version),
		))
	})
	mux.HandleFunc("DELETE /v1/collections/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if !reg.Delete(name) {
			writeError(w, http.StatusNotFound, "unknown collection "+name)
			return
		}
		writeJSON(w, http.StatusOK, jsonvalue.ObjectFromPairs(
			"collection", name,
			"deleted", true,
		))
	})
	mux.HandleFunc("GET /v1/collections/{name}/schema", func(w http.ResponseWriter, r *http.Request) {
		snap, ok := reg.Get(r.PathValue("name"))
		if !ok {
			writeError(w, http.StatusNotFound, "unknown collection "+r.PathValue("name"))
			return
		}
		output := r.URL.Query().Get("output")
		if output == "" {
			output = "type"
		}
		if r.URL.Query().Get("meta") != "" {
			rendered, err := renderSchema(snap.Type, output)
			if err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
			meta := snapshotMeta(snap).WithField("schema", jsonvalue.FromGo(rendered))
			writeJSON(w, http.StatusOK, meta)
			return
		}
		switch output {
		case "jsonschema":
			writeJSON(w, http.StatusOK, core.TypeToJSONSchema(snap.Type))
		default:
			rendered, err := renderSchema(snap.Type, output)
			if err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			s, _ := rendered.(string)
			fmt.Fprintln(w, s)
		}
	})
	return mux
}

// collectionOpts parses the per-collection override parameters of a
// create or ingest request: ?equiv=K|L (the jsinfer engine names
// parametric-K/parametric-L are accepted too) pins the collection's
// merge equivalence.
func collectionOpts(r *http.Request) (registry.CollectionOptions, error) {
	var co registry.CollectionOptions
	switch q := r.URL.Query().Get("equiv"); q {
	case "":
	case "K", "k", "parametric-K":
		e := typelang.EquivKind
		co.Equiv = &e
	case "L", "l", "parametric-L":
		e := typelang.EquivLabel
		co.Equiv = &e
	default:
		return co, fmt.Errorf("unknown equiv %q (want K or L)", q)
	}
	return co, nil
}

// renderSchema renders t in one of jsinfer's output formats: a string
// for the text forms, a *jsonvalue.Value for jsonschema.
func renderSchema(t *core.Type, output string) (any, error) {
	switch output {
	case "type":
		return t.String(), nil
	case "counted":
		return t.StringCounted(), nil
	case "typescript":
		return core.TypeToTypeScript("Root", t), nil
	case "swift":
		return core.TypeToSwift("Root", t), nil
	case "jsonschema":
		return core.TypeToJSONSchema(t), nil
	default:
		return nil, fmt.Errorf("unknown output %q (want type, counted, jsonschema, typescript or swift)", output)
	}
}

// snapshotMeta is the JSON envelope of one collection snapshot, minus
// the schema itself.
func snapshotMeta(s registry.Snapshot) *jsonvalue.Value {
	return jsonvalue.ObjectFromPairs(
		"name", s.Name,
		"equiv", s.Equiv.String(),
		"docs", s.Docs,
		"version", int64(s.Version),
		"ingests", s.Ingests,
		"errors", s.Errors,
		"schema_nodes", s.Type.Size(),
	)
}

func writeJSON(w http.ResponseWriter, status int, v *jsonvalue.Value) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(jsontext.MarshalIndent(v, "  "))
	w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, jsonvalue.ObjectFromPairs("error", msg))
}
