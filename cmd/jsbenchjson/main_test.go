package main

import (
	"strings"
	"testing"
)

// TestParseEventsMixedStream feeds a realistic test2json event stream —
// benchmark rows interleaved with GOMAXPROCS noise, custom metrics,
// non-output events and a raw (non-JSON) line — and checks the rows
// survive with the right numbers.
func TestParseEventsMixedStream(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"start","Package":"repro"}`,
		`{"Action":"output","Output":"goos: linux\n"}`,
		// The testing package flushes the name before the numbers, so a
		// result line usually spans two output events.
		`{"Action":"output","Output":"BenchmarkE3StreamingInference/mison-parallel-4-8         \t"}`,
		`{"Action":"output","Output":"      33\t  36398818 ns/op\t  96.69 MB/s\t22345678 B/op\t  161616 allocs/op\n"}`,
		`{"Action":"output","Output":"BenchmarkE3StreamingInference/scan-sequential-8 \t      14\t  83652642 ns/op\t  42.09 MB/s\t32090912 B/op\t  306844 allocs/op\n"}`,
		`{"Action":"output","Output":"BenchmarkE1ParametricInference/K-8 \t     100\t   1234567 ns/op\t        77.0 schema-nodes\t         0.99 precision\n"}`,
		`{"Action":"output","Output":"PASS\n"}`,
		`{"Action":"pass","Package":"repro"}`,
		"BenchmarkRaw-8   7   999 ns/op   1 B/op   0 allocs/op",
		`not json at all`,
	}, "\n")
	rows, err := parseEvents(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("parsed %d rows, want 4: %+v", len(rows), rows)
	}
	r := rows[0]
	if r.Name != "BenchmarkE3StreamingInference/mison-parallel-4-8" ||
		r.Iterations != 33 || r.NsPerOp != 36398818 ||
		r.MBPerS != 96.69 || r.BytesPerOp != 22345678 || r.AllocsPerOp != 161616 {
		t.Errorf("row 0 wrong: %+v", r)
	}
	if rows[2].Name != "BenchmarkE1ParametricInference/K-8" || rows[2].MBPerS != 0 {
		t.Errorf("custom-metric row wrong: %+v", rows[2])
	}
	if rows[3].Name != "BenchmarkRaw-8" || rows[3].NsPerOp != 999 {
		t.Errorf("raw-line row wrong: %+v", rows[3])
	}
}

// TestParseBenchLineRejectsNonRows keeps the filter tight: lines that
// merely start with "Benchmark" but are not result rows are dropped.
func TestParseBenchLineRejectsNonRows(t *testing.T) {
	for _, line := range []string{
		"BenchmarkE3StreamingInference",       // bench start line, no row yet
		"Benchmarking is fun",                 // prose
		"BenchmarkX-8   notanumber   1 ns/op", // corrupt
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine accepted %q", line)
		}
	}
}
