// Command jsbenchjson turns `go test -bench -json` output into a
// machine-readable benchmark report: it reads the test2json event
// stream on stdin, extracts the benchmark result lines, and writes one
// JSON array of rows — name, iterations, ns/op, MB/s, B/op, allocs/op
// — to the -out file (stdout with -out -). The Makefile's bench-json
// target drives it to emit BENCH_6.json, the perf-trajectory artifact
// CI uploads on every build:
//
//	go test -run '^$' -bench BenchmarkE3StreamingInference -benchmem -json . |
//	    go run repro/cmd/jsbenchjson -out BENCH_6.json
//
// Only rows are recorded — test2json wraps every output line in an
// event, so the filter keys on the canonical `BenchmarkName<tab>...`
// shape and tolerates arbitrary interleaved noise (GOMAXPROCS lines,
// metrics, PASS/ok).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// testEvent is the subset of the test2json event schema we consume.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// row is one benchmark result.
type row struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	out := flag.String("out", "-", "output file (- for stdout)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("jsbenchjson: ")

	rows, err := parseEvents(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	enc, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "jsbenchjson: wrote %d rows to %s\n", len(rows), *out)
}

// parseEvents drains a test2json stream and returns the benchmark rows
// found in its output events. The testing package flushes a benchmark's
// name before its numbers, so one result line typically arrives as two
// or more output events; the events' Output fields are stitched back
// into the original byte stream before line parsing. Input lines that
// are not valid JSON events are tolerated and treated as plain
// benchmark output, so the tool also accepts raw `go test -bench`
// output.
func parseEvents(r io.Reader) ([]row, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var output strings.Builder
	for sc.Scan() {
		line := sc.Text()
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err == nil && ev.Action != "" {
			if ev.Action == "output" {
				output.WriteString(ev.Output)
			}
			continue
		}
		output.WriteString(line)
		output.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rows := make([]row, 0, 16)
	for _, line := range strings.Split(output.String(), "\n") {
		if b, ok := parseBenchLine(line); ok {
			rows = append(rows, b)
		}
	}
	return rows, nil
}

// parseBenchLine parses one canonical benchmark result line:
//
//	BenchmarkFoo/bar-8   100   123456 ns/op   55.5 MB/s   987 B/op   42 allocs/op
//
// Trailing custom metrics (b.ReportMetric units) are ignored.
func parseBenchLine(line string) (row, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return row{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return row{}, false
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return row{}, false
	}
	b := row{Name: fields[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "MB/s":
			b.MBPerS = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, true
}
