package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
)

// TestCheckedInFixturesMatchGenerators regenerates every fixture from
// its pinned (generator, seed, count) entry and compares byte-for-byte
// with the checked-in file: the corpus cannot drift from the table.
func TestCheckedInFixturesMatchGenerators(t *testing.T) {
	for _, fx := range fixtures {
		path := filepath.Join("..", "..", "testdata", fx.name)
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run `go run repro/cmd/jsfixtures -dir testdata`)", fx.name, err)
		}
		var buf bytes.Buffer
		for i := 0; i < fx.n; i++ {
			buf.Write(jsontext.Marshal(fx.gen.Generate(i)))
			buf.WriteByte('\n')
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s: checked-in fixture differs from its generator — regenerate with `go run repro/cmd/jsfixtures -dir testdata`", fx.name)
		}
	}
}

// depthOf is the container nesting depth of v.
func depthOf(v *jsonvalue.Value) int {
	max := 0
	switch v.Kind() {
	case jsonvalue.Object:
		for _, f := range v.Fields() {
			if d := depthOf(f.Value); d > max {
				max = d
			}
		}
		return max + 1
	case jsonvalue.Array:
		for i := 0; i < v.Len(); i++ {
			if d := depthOf(v.Elem(i)); d > max {
				max = d
			}
		}
		return max + 1
	default:
		return 0
	}
}

// TestAdversarialFixtureShapes pins what makes the stress fixtures
// stressful: sparse spreads thousands of distinct top-level keys across
// near-unique label sets, deep nests every document ~50 levels.
func TestAdversarialFixtureShapes(t *testing.T) {
	parse := func(name string) []*jsonvalue.Value {
		t.Helper()
		data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		var docs []*jsonvalue.Value
		for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
			v, err := jsontext.Parse(line)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			docs = append(docs, v)
		}
		return docs
	}

	sparse := parse("sparse.ndjson")
	keys := map[string]bool{}
	labelSets := map[string]bool{}
	for _, d := range sparse {
		var set []byte
		for _, f := range d.Fields() {
			keys[f.Name] = true
			set = append(set, f.Name...)
			set = append(set, ',')
		}
		labelSets[string(set)] = true
	}
	if len(keys) < 2000 {
		t.Errorf("sparse fixture spans %d distinct keys, want thousands (>= 2000)", len(keys))
	}
	if len(labelSets) < len(sparse)*9/10 {
		t.Errorf("sparse fixture has %d distinct label sets over %d docs — the record-group churn is gone", len(labelSets), len(sparse))
	}

	deep := parse("deep.ndjson")
	for i, d := range deep {
		if got := depthOf(d); got < 48 {
			t.Errorf("deep fixture doc %d nests %d levels, want >= 48", i, got)
		}
	}
}
