// Command jsfixtures regenerates the checked-in NDJSON fixtures under
// testdata/ from the deterministic genjson generators, with the seeds
// pinned by the golden tests in internal/core. Run it via go:generate
// (see internal/core/core.go) or directly:
//
//	go run repro/cmd/jsfixtures -dir testdata
//
// The output is byte-for-byte reproducible: same seeds, same document
// counts, compact marshalling, one document per line.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/genjson"
	"repro/internal/jsontext"
)

// fixtures pins generator, seed and size for each checked-in file.
// Changing any entry changes the fixture and therefore the golden
// schemas in internal/core/golden_test.go — regenerate both together.
var fixtures = []struct {
	name string
	gen  genjson.Generator
	n    int
}{
	{"tweets.ndjson", genjson.Twitter{Seed: 7}, 25},
	{"events.ndjson", genjson.GitHub{Seed: 1}, 25},
	{"orders.ndjson", genjson.Orders{Seed: 1}, 25},
	// Adversarial stress fixtures: sparse draws a dozen-odd fields per
	// document from a 4000-key universe (thousands of distinct keys,
	// near-unique label sets — record-group churn under L); deep nests
	// every document ~50 container levels (staging-frame churn). They
	// ride every testdata/*.ndjson sweep, so they stay modest in bytes.
	{"sparse.ndjson", genjson.Sparse{Seed: 11, Universe: 4000, PerDoc: 16}, 250},
	{"deep.ndjson", genjson.Deep{Seed: 3, Depth: 48}, 40},
}

func main() {
	dir := flag.String("dir", "testdata", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	for _, fx := range fixtures {
		path := filepath.Join(*dir, fx.name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		for i := 0; i < fx.n; i++ {
			w.Write(jsontext.Marshal(fx.gen.Generate(i)))
			w.WriteByte('\n')
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d docs)\n", path, fx.n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jsfixtures:", err)
	os.Exit(1)
}
