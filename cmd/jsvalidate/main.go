// Command jsvalidate validates an NDJSON collection against a schema
// expressed in any of the three §2 formalisms: JSON Schema, JSound, or
// an inferred-type JSON Schema. It prints per-document verdicts (or a
// summary) and exits non-zero if any document is invalid.
//
// Usage:
//
//	jsvalidate -schema schema.json [-lang jsonschema|jsound] [-quiet] [data.ndjson ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/jsontext"
	"repro/internal/jsonvalue"
)

func main() {
	schemaPath := flag.String("schema", "", "path to the schema document (required)")
	lang := flag.String("lang", "jsonschema", "schema language: jsonschema or jsound")
	quiet := flag.Bool("quiet", false, "print only the summary")
	flag.Parse()

	if *schemaPath == "" {
		fatal(fmt.Errorf("-schema is required"))
	}
	schemaBytes, err := os.ReadFile(*schemaPath)
	if err != nil {
		fatal(err)
	}
	schemaDoc, err := jsontext.Parse(schemaBytes)
	if err != nil {
		fatal(fmt.Errorf("parsing schema: %w", err))
	}
	var validator core.Validator
	switch *lang {
	case "jsonschema":
		validator, err = core.CompileJSONSchema(schemaDoc)
	case "jsound":
		validator, err = core.CompileJSound(schemaDoc)
	default:
		err = fmt.Errorf("unknown language %q", *lang)
	}
	if err != nil {
		fatal(err)
	}

	docs, err := readInput(flag.Args())
	if err != nil {
		fatal(err)
	}
	invalid := 0
	for i, doc := range docs {
		if validator.Accepts(doc) {
			continue
		}
		invalid++
		if !*quiet {
			fmt.Printf("doc %d: INVALID\n", i)
			for _, reason := range validator.Explain(doc) {
				fmt.Printf("  %s\n", reason)
			}
		}
	}
	fmt.Printf("%s: %d/%d valid\n", validator.Name(), len(docs)-invalid, len(docs))
	if invalid > 0 {
		os.Exit(1)
	}
}

func readInput(files []string) ([]*jsonvalue.Value, error) {
	if len(files) == 0 {
		return jsontext.NewDecoder(os.Stdin).DecodeAll()
	}
	var docs []*jsonvalue.Value
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		part, err := jsontext.NewDecoder(f).DecodeAll()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		docs = append(docs, part...)
	}
	return docs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jsvalidate:", err)
	os.Exit(1)
}
