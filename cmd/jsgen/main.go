// Command jsgen emits synthetic JSON collections (NDJSON on stdout)
// from the workload generators used by the experiment harness, so the
// other CLI tools can be exercised end to end:
//
//	jsgen -kind twitter -n 1000 | jsinfer -engine parametric-L
//	jsgen -kind orders  -n 5000 | jstranslate -format columnar -out o.col
//
// Usage:
//
//	jsgen -kind twitter|github|opendata|orders|typedrift|skewed|nested|nyt
//	      [-n 1000] [-seed 1] [-indent]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/genjson"
	"repro/internal/jsontext"
)

func main() {
	kind := flag.String("kind", "twitter", "generator: twitter, github, opendata, orders, typedrift, skewed, nested, nyt")
	n := flag.Int("n", 1000, "number of documents")
	seed := flag.Int64("seed", 1, "generator seed")
	indent := flag.Bool("indent", false, "pretty-print each document (multi-line, not NDJSON)")
	flag.Parse()

	var g genjson.Generator
	switch *kind {
	case "twitter":
		g = genjson.Twitter{Seed: *seed}
	case "github":
		g = genjson.GitHub{Seed: *seed}
	case "opendata":
		g = genjson.OpenData{Seed: *seed}
	case "orders":
		g = genjson.Orders{Seed: *seed}
	case "typedrift":
		g = genjson.TypeDrift{Seed: *seed}
	case "skewed":
		g = genjson.SkewedOptional{Seed: *seed}
	case "nested":
		g = genjson.NestedArrays{Seed: *seed}
	case "nyt":
		g = genjson.NYTArticles{Seed: *seed}
	default:
		fmt.Fprintf(os.Stderr, "jsgen: unknown kind %q\n", *kind)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i := 0; i < *n; i++ {
		doc := g.Generate(i)
		if *indent {
			w.Write(jsontext.MarshalIndent(doc, "  "))
		} else {
			w.Write(jsontext.Marshal(doc))
		}
		w.WriteByte('\n')
	}
}
