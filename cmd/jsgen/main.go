// Command jsgen emits synthetic JSON collections (NDJSON on stdout)
// from the workload generators used by the experiment harness, so the
// other CLI tools can be exercised end to end:
//
//	jsgen -kind twitter -n 1000 | jsinfer -engine parametric-L
//	jsgen -kind orders  -n 5000 | jstranslate -format columnar -out o.col
//	jsgen -kind wide -target 100MB > corpus.ndjson
//
// Usage:
//
//	jsgen -kind twitter|github|opendata|orders|typedrift|skewed|nested|nyt|wide|sparse|deep|fields
//	      [-n 1000] [-target 100MB] [-seed 1] [-indent]
//
// -target SIZE (accepting 64K, 100MB, 1G, or a bare byte count)
// overrides -n: documents are emitted until at least SIZE bytes are
// written. The corpus a given (-kind, -seed, -target) names is
// reproducible — documents are generated in index order from a
// per-document seed, so the same invocation always yields the same
// bytes, which is what GB-scale scaling runs need.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/genjson"
	"repro/internal/jsontext"
)

func main() {
	kind := flag.String("kind", "twitter", "generator: twitter, github, opendata, orders, typedrift, skewed, nested, nyt, wide, sparse, deep, fields")
	n := flag.Int("n", 1000, "number of documents")
	target := flag.String("target", "", "emit documents until at least this many bytes are written (e.g. 100MB, 1G); overrides -n")
	seed := flag.Int64("seed", 1, "generator seed")
	indent := flag.Bool("indent", false, "pretty-print each document (multi-line, not NDJSON)")
	flag.Parse()

	var g genjson.Generator
	switch *kind {
	case "twitter":
		g = genjson.Twitter{Seed: *seed}
	case "github":
		g = genjson.GitHub{Seed: *seed}
	case "opendata":
		g = genjson.OpenData{Seed: *seed}
	case "orders":
		g = genjson.Orders{Seed: *seed}
	case "typedrift":
		g = genjson.TypeDrift{Seed: *seed}
	case "skewed":
		g = genjson.SkewedOptional{Seed: *seed}
	case "nested":
		g = genjson.NestedArrays{Seed: *seed}
	case "nyt":
		g = genjson.NYTArticles{Seed: *seed}
	case "wide":
		g = genjson.Wide{Seed: *seed}
	case "sparse":
		g = genjson.Sparse{Seed: *seed}
	case "deep":
		g = genjson.Deep{Seed: *seed}
	case "fields":
		g = genjson.Fields{Seed: *seed}
	default:
		fmt.Fprintf(os.Stderr, "jsgen: unknown kind %q\n", *kind)
		os.Exit(1)
	}

	var targetBytes int64
	if *target != "" {
		tb, err := genjson.ParseSize(*target)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jsgen: %v\n", err)
			os.Exit(1)
		}
		targetBytes = tb
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	var written int64
	for i := 0; targetBytes > 0 && written < targetBytes || targetBytes == 0 && i < *n; i++ {
		doc := g.Generate(i)
		var line []byte
		if *indent {
			line = jsontext.MarshalIndent(doc, "  ")
		} else {
			line = jsontext.Marshal(doc)
		}
		w.Write(line)
		w.WriteByte('\n')
		written += int64(len(line)) + 1
	}
}
