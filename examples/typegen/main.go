// typegen: §3's "types in programming languages", executable. One
// schema is inferred from tweet-like data and emitted as TypeScript
// declarations and Swift Codable types, making the tutorial's
// comparison concrete: TypeScript absorbs union types structurally
// (A | B), Swift needs nominal enums with associated values, and
// optional fields land as `?` in both but mean different things.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/genjson"
)

func main() {
	docs := genjson.Collection(genjson.Twitter{Seed: 99, OptionalP: 0.5}, 500)
	inf, err := core.InferSchema(docs, core.ParametricK)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inferred type:")
	fmt.Println(" ", inf.Type)

	fmt.Println("\n================ TypeScript ================")
	fmt.Print(core.TypeToTypeScript("Tweet", inf.Type))

	fmt.Println("\n=================== Swift ==================")
	fmt.Print(core.TypeToSwift("Tweet", inf.Type))
}
