// apilogs: the tutorial's motivating scenario — a service ingests
// heterogeneous JSON events from a web API (here: GitHub-style events)
// and needs to understand and police their structure. The example
// runs the full §4.1 tool chest over one stream: parametric inference,
// Spark-style inference (to see what the union-free lattice loses),
// the mongodb-schema streaming analyzer, a mined skeleton for query
// planning, and fast projection of two fields with the Mison-style
// parser.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/genjson"
	"repro/internal/jsontext"
	"repro/internal/mison"
	"repro/internal/skeleton"
)

func main() {
	// 2000 events of six different layouts (one per event type).
	docs := genjson.Collection(genjson.GitHub{Seed: 2024}, 2000)

	// 1. Parametric inference, both levels.
	k, err := core.InferSchema(docs, core.ParametricK)
	if err != nil {
		log.Fatal(err)
	}
	l, err := core.InferSchema(docs, core.ParametricL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parametric-K: size %4d nodes, precision %.3f\n", k.Size, k.Precision)
	fmt.Printf("parametric-L: size %4d nodes, precision %.3f\n", l.Size, l.Precision)

	// 2. Spark-style inference collapses the per-event-type payloads.
	spark, err := core.InferSchema(docs, core.Spark)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spark:        size %4d nodes, precision %.3f  <- union-free lattice\n",
		spark.Size, spark.Precision)

	// 3. Streaming per-field statistics (mongodb-schema style).
	report := core.AnalyzeStreaming(docs)
	fields, _ := report.Get("fields")
	fmt.Printf("\nstreaming analyzer: %d field paths; first three:\n", fields.Len())
	for i := 0; i < 3 && i < fields.Len(); i++ {
		f := fields.Elem(i)
		name, _ := f.Get("name")
		prob, _ := f.Get("probability")
		fmt.Printf("  %-20s present %.0f%%\n", name.Str(), prob.Num()*100)
	}

	// 4. A skeleton for query formulation: which paths are safe to
	// query at 10% support?
	sk := skeleton.Build(docs, 0.10)
	fmt.Printf("\nskeleton at 10%% support: %d paths, coverage %.3f\n",
		sk.Size(), sk.Coverage(docs))
	for _, q := range []string{"actor.login", "payload.commits[].sha", "payload.release.tag_name"} {
		fmt.Printf("  can answer %-28s %v\n", q+"?", sk.AnswersPath(q))
	}

	// 5. Analytics-style projection: count events per type without
	// parsing payloads (Mison-style).
	p := mison.MustNewParser("type", "actor.login")
	counts := map[string]int{}
	for _, d := range docs {
		row, err := p.ParseRecord(jsontext.Marshal(d))
		if err != nil {
			log.Fatal(err)
		}
		counts[row[0].Str()]++
	}
	fmt.Printf("\nevents by type (speculation hit rate %.2f):\n",
		float64(p.Hits)/float64(p.Hits+p.Misses))
	for _, ty := range []string{"PushEvent", "PullRequestEvent", "IssuesEvent", "ForkEvent", "WatchEvent", "ReleaseEvent"} {
		fmt.Printf("  %-18s %d\n", ty, counts[ty])
	}
}
