// datalake: §5's schema-based data translation end to end. A
// denormalised JSON order feed is (1) translated into the Avro-like
// row binary and the Parquet-like columnar format with an inferred
// schema, (2) scanned column-wise for an aggregate, and (3) normalised
// into a relational schema by mining its functional dependencies —
// the three destinations JSON data takes on its way into a lake.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/genjson"
	"repro/internal/infer"
	"repro/internal/normalize"
	"repro/internal/translate"
	"repro/internal/typelang"
)

func main() {
	docs := genjson.Collection(genjson.Orders{Seed: 7, Customers: 30, Products: 60}, 5000)

	// 1. Translate: one inferred schema drives both binary formats.
	tr, err := core.Translate(docs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inferred schema:", tr.Schema)
	fmt.Printf("\nsizes: raw JSON %d B, row binary %d B (%.2fx), columnar %d B (%.2fx)\n",
		len(tr.RawJSON),
		len(tr.RowBinary), float64(len(tr.RowBinary))/float64(len(tr.RawJSON)),
		len(tr.Columnar), float64(len(tr.Columnar))/float64(len(tr.RawJSON)))

	// 2. Column scan vs JSON re-parse: total revenue computed by
	// re-parsing the NDJSON, then by two columnar scans.
	schema := infer.Infer(docs, infer.Options{Equiv: typelang.EquivLabel})
	cs, err := translate.Shred(docs, schema)
	if err != nil {
		log.Fatal(err)
	}

	jsonStart := time.Now()
	var viaJSON float64
	reparsed, err := core.ParseCollection(tr.RawJSON)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range reparsed {
		lines, _ := d.Get("lines")
		for _, ln := range lines.Elems() {
			price, _ := ln.Get("unit_price")
			qty, _ := ln.Get("qty")
			viaJSON += price.Num() * float64(qty.Int())
		}
	}
	jsonTime := time.Since(jsonStart)

	colStart := time.Now()
	var qtys []int64
	var prices []float64
	if err := cs.ScanInts("lines[].qty", func(n int64) { qtys = append(qtys, n) }); err != nil {
		log.Fatal(err)
	}
	if err := cs.ScanNums("lines[].unit_price", func(f float64) { prices = append(prices, f) }); err != nil {
		log.Fatal(err)
	}
	var viaColumns float64
	for i := range qtys {
		viaColumns += prices[i] * float64(qtys[i])
	}
	colTime := time.Since(colStart)
	fmt.Printf("\nrevenue via JSON re-parse: %.2f in %v\n", viaJSON, jsonTime)
	fmt.Printf("revenue via column scans:  %.2f in %v (%.1fx faster)\n",
		viaColumns, colTime, float64(jsonTime)/float64(colTime))

	// 3. Normalise: mine FDs, discover the customer and product
	// entities, and print the relational schema.
	rels := normalize.Flatten(docs)
	fmt.Println("\nnormalised schema:")
	for _, rel := range rels {
		dec := normalize.Normalize(rel, 10)
		fmt.Print(dec.Describe())
		fmt.Printf("  cells: %d flat -> %d normalised\n", rel.CellCount(), dec.CellCount())
	}
}
