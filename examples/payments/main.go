// payments: §2's "compare their capabilities in a few scenarios",
// executable. One payment-intake contract is expressed in all three
// surveyed schema languages — JSON Schema (with draft-07 conditionals
// and negation), Joi (with co-occurrence, mutual exclusion and
// value-dependent types, the features the tutorial highlights), and
// JSound (as far as its restrictive core allows) — then the same
// request corpus is pushed through all three, showing where each
// formalism can and cannot draw the line.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/joi"
	"repro/internal/jsontext"
)

func main() {
	// The contract:
	//   - amount: positive number, required
	//   - currency: one of EUR, USD; required
	//   - exactly one of card / iban (mutual exclusion)
	//   - card payments require billing_zip (co-occurrence)
	//   - kind selects the shape of meta: kind=recurring needs
	//     meta.interval_days (value-dependent typing)
	//   - guest payments must not carry a customer_id

	jsonSchema, err := core.CompileJSONSchema(jsontext.MustParse(`{
		"type": "object",
		"required": ["amount", "currency"],
		"properties": {
			"amount":   {"type": "number", "exclusiveMinimum": 0},
			"currency": {"enum": ["EUR", "USD"]},
			"card":     {"type": "string", "pattern": "^[0-9]{16}$"},
			"iban":     {"type": "string", "pattern": "^[A-Z]{2}[0-9]{2}"},
			"billing_zip": {"type": "string"},
			"kind":     {"enum": ["oneoff", "recurring"]},
			"meta":     {"type": "object"},
			"guest":    {"type": "boolean"},
			"customer_id": {"type": "integer"}
		},
		"oneOf": [
			{"required": ["card"], "not": {"required": ["iban"]}},
			{"required": ["iban"], "not": {"required": ["card"]}}
		],
		"dependencies": {"card": ["billing_zip"]},
		"if":   {"properties": {"kind": {"const": "recurring"}}, "required": ["kind"]},
		"then": {"properties": {"meta": {"required": ["interval_days"]}}, "required": ["meta"]},
		"allOf": [{
			"if":   {"properties": {"guest": {"const": true}}, "required": ["guest"]},
			"then": {"not": {"required": ["customer_id"]}}
		}]
	}`))
	if err != nil {
		log.Fatal(err)
	}

	joiSchema := core.WrapJoi(joi.Object().Unknown(true).Keys(joi.K{
		"amount":      joi.Number().Positive().Required(),
		"currency":    joi.String().Valid("EUR", "USD").Required(),
		"card":        joi.String().Pattern(`^[0-9]{16}$`),
		"iban":        joi.String().Pattern(`^[A-Z]{2}[0-9]{2}`),
		"billing_zip": joi.String(),
		"kind":        joi.String().Valid("oneoff", "recurring"),
		"meta": joi.When("kind", joi.String().Valid("recurring"),
			joi.Object().Unknown(true).Keys(joi.K{
				"interval_days": joi.Number().Integer().Required(),
			}).Required(),
			joi.Object().Unknown(true)),
		"guest":       joi.Boolean(),
		"customer_id": joi.Number().Integer(),
	}).Xor("card", "iban").With("card", "billing_zip").Without("guest", "customer_id"))

	// JSound cannot say "exactly one of", "requires", or "depends on a
	// sibling's value" — its contract is necessarily weaker: just the
	// field types, required amount/currency, closed record.
	jsound, err := core.CompileJSound(jsontext.MustParse(`{
		"!amount": "decimal",
		"!currency": "string",
		"card": "string",
		"iban": "string",
		"billing_zip": "string",
		"kind": "string",
		"meta": {"interval_days": "integer"},
		"guest": "boolean",
		"customer_id": "integer"
	}`))
	if err != nil {
		log.Fatal(err)
	}

	requests := []string{
		`{"amount": 25, "currency": "EUR", "card": "4111111111111111", "billing_zip": "75005"}`,
		`{"amount": 25, "currency": "EUR", "iban": "FR7630006000011234567890189"}`,
		`{"amount": 25, "currency": "EUR", "card": "4111111111111111"}`,                                             // card without zip
		`{"amount": 25, "currency": "EUR", "card": "4111111111111111", "billing_zip": "1", "iban": "FR7612345678"}`, // both instruments
		`{"amount": 25, "currency": "EUR"}`,                                                                         // no instrument
		`{"amount": -1, "currency": "EUR", "iban": "FR7612345678"}`,                                                 // bad amount
		`{"amount": 9, "currency": "USD", "iban": "DE44123456", "kind": "recurring", "meta": {"interval_days": 30}}`,
		`{"amount": 9, "currency": "USD", "iban": "DE44123456", "kind": "recurring", "meta": {}}`, // missing interval
		`{"amount": 9, "currency": "USD", "iban": "DE44123456", "guest": true, "customer_id": 7}`, // guest w/ id
	}

	fmt.Printf("%-4s  %-11s  %-5s  %-7s\n", "req", "jsonschema", "joi", "jsound")
	for i, raw := range requests {
		doc, err := core.ParseString(raw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("#%-3d  %-11v  %-5v  %-7v\n", i,
			jsonSchema.Accepts(doc), joiSchema.Accepts(doc), jsound.Accepts(doc))
	}
	fmt.Println("\nWhere the formalisms diverge (the tutorial's point):")
	fmt.Println("  - requests 2-4, 7-8: mutual exclusion, co-occurrence and value-")
	fmt.Println("    dependent typing are expressible in JSON Schema (via oneOf/not/")
	fmt.Println("    dependencies/if-then) and native in Joi (xor/with/when), but")
	fmt.Println("    JSound's restrictive core cannot state them and accepts.")
	doc, _ := core.ParseString(requests[2])
	fmt.Println("\nJoi's explanation for request #2:")
	for _, reason := range joiSchema.Explain(doc) {
		fmt.Println("  ", reason)
	}
}
