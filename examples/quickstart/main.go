// Quickstart: parse a small heterogeneous collection, infer schemas at
// both abstraction levels, validate, and print a JSON Schema — the
// library's core loop in ~60 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/infer"
	"repro/internal/typelang"
)

func main() {
	// A tiny collection with the heterogeneity JSON data shows in the
	// wild: optional fields and a type-drifting "id".
	raw := []string{
		`{"id": 1, "name": "ada",   "tags": ["math"]}`,
		`{"id": 2, "name": "grace", "email": "g@navy.mil"}`,
		`{"id": "x3", "name": "alan", "tags": ["logic", "ai"]}`,
	}
	docs := make([]*core.Value, 0, len(raw))
	for _, line := range raw {
		v, err := core.ParseString(line)
		if err != nil {
			log.Fatal(err)
		}
		docs = append(docs, v)
	}

	// Infer under both equivalences of the parametric approach.
	k := infer.Infer(docs, infer.Options{Equiv: typelang.EquivKind})
	l := infer.Infer(docs, infer.Options{Equiv: typelang.EquivLabel})
	fmt.Println("K-schema (records fused):   ", k)
	fmt.Println("L-schema (label sets apart):", l)
	fmt.Println("K with counts:              ", k.StringCounted())

	// Every document matches the inferred type; new documents are
	// checked against it.
	val := core.WrapType(k)
	probe, _ := core.ParseString(`{"id": 4, "name": "barbara", "email": "b@mit.edu"}`)
	fmt.Println("\nnew doc accepted:", val.Accepts(probe))
	bad, _ := core.ParseString(`{"name": 42}`)
	fmt.Println("bad doc accepted:", val.Accepts(bad))
	for _, reason := range val.Explain(bad) {
		fmt.Println("  reason:", reason)
	}

	// The same schema as a JSON Schema document, ready for any
	// validator in any language.
	fmt.Println("\nas JSON Schema:")
	fmt.Println(string(core.MarshalIndent(core.TypeToJSONSchema(k), "  ")))
}
