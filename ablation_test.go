package repro_test

// Ablation benchmarks for the design choices DESIGN.md calls out:
// what each speculative/structural mechanism actually buys.

import (
	"testing"

	"repro/internal/fadjs"
	"repro/internal/genjson"
	"repro/internal/infer"
	"repro/internal/jsontext"
	"repro/internal/mison"
	"repro/internal/translate"
	"repro/internal/typelang"
)

// Ablation: Mison's speculative pattern tree. A fresh parser per
// record never amortises learned ordinals — the difference is what
// speculation buys on top of the structural index itself.
func BenchmarkAblationMisonSpeculation(b *testing.B) {
	docs := genjson.Collection(genjson.Twitter{Seed: 401, RetweetP: 0.01}, 300)
	lines := make([][]byte, len(docs))
	for i, d := range docs {
		lines[i] = jsontext.Marshal(d)
	}
	paths := []string{"id", "user.screen_name"}
	b.Run("with-speculation", func(b *testing.B) {
		p := mison.MustNewParser(paths...)
		for i := 0; i < b.N; i++ {
			for _, raw := range lines {
				if _, err := p.ParseRecord(raw); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("without-speculation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, raw := range lines {
				p := mison.MustNewParser(paths...) // no memory across records
				if _, err := p.ParseRecord(raw); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// Ablation: Fad.js lazy skipping. Decoding with a 2-field projection
// versus materialising all ~15 fields of a tweet-like record.
func BenchmarkAblationFadjsProjection(b *testing.B) {
	docs := genjson.Collection(genjson.Twitter{Seed: 402, OptionalP: 0, RetweetP: 0}, 500)
	lines := make([][]byte, len(docs))
	for i, d := range docs {
		lines[i] = jsontext.Marshal(d)
	}
	b.Run("project-2-fields", func(b *testing.B) {
		dec := fadjs.NewDecoder("id", "lang")
		for i := 0; i < b.N; i++ {
			for _, raw := range lines {
				if _, err := dec.Decode(raw); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("decode-all-fields", func(b *testing.B) {
		dec := fadjs.NewDecoder()
		for i := 0; i < b.N; i++ {
			for _, raw := range lines {
				if _, err := dec.Decode(raw); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// Ablation: schema-aware versus schema-oblivious row translation. The
// oblivious encoder ships every value as length-prefixed JSON text
// (schema = Any); the aware one uses the inferred schema's layout.
func BenchmarkAblationSchemaOblivious(b *testing.B) {
	docs := genjson.Collection(genjson.Orders{Seed: 403}, 500)
	schema := infer.Infer(docs, infer.Options{Equiv: typelang.EquivLabel})
	raw := jsontext.MarshalLines(docs)
	b.Run("schema-aware", func(b *testing.B) {
		var out []byte
		for i := 0; i < b.N; i++ {
			var err error
			out, err = translate.EncodeCollection(docs, schema)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(out))/float64(len(raw)), "size-ratio")
	})
	b.Run("schema-oblivious", func(b *testing.B) {
		var out []byte
		for i := 0; i < b.N; i++ {
			var err error
			out, err = translate.EncodeCollection(docs, typelang.Any)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(out))/float64(len(raw)), "size-ratio")
	})
}

// Ablation: the object field index. Lookup-heavy validation on wide
// records exercises jsonvalue's map-above-threshold design; this bench
// pins its effect at the workload level (inference reads every field).
func BenchmarkAblationInferenceEquivalence(b *testing.B) {
	docs := genjson.Collection(genjson.GitHub{Seed: 404}, 500)
	for _, e := range []typelang.Equiv{typelang.EquivKind, typelang.EquivLabel} {
		e := e
		b.Run(e.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				infer.Infer(docs, infer.Options{Equiv: e})
			}
		})
	}
}
