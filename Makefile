GO ?= go

# The packages with first-class doc.go documentation; `make docs`
# smoke-tests that each still renders.
DOC_PKGS = repro/internal/jsontext repro/internal/infer \
           repro/internal/typelang repro/internal/mison repro/internal/core \
           repro/internal/registry repro/internal/daemon/intake \
           repro/internal/daemon/metrics

.PHONY: all build vet test race bench bench-stream bench-json docs fixtures serve smoke-daemon ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race ./internal/infer/ ./internal/typelang/ ./internal/jsontext/ ./internal/mison/ ./internal/registry/ ./internal/daemon/... ./cmd/jsinferd/

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Short streaming benchmark — the dom/scan/mison triplets, the
# reader-vs-bytes zero-copy pair, plus the mison-vs-lexer
# token-throughput pair (allocs/op and B/op are the headline metrics);
# CI runs this as a non-blocking step so the numbers land in every
# build log without gating merges on a noisy runner.
bench-stream:
	$(GO) test -run '^$$' -bench 'BenchmarkE3StreamingInference' -benchtime 200ms -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkTokenSourceVsLexer' -benchtime 200ms -benchmem ./internal/mison/

# Perf trajectory: the E3 streamed rows (ns/op, MB/s, B/op, allocs/op)
# as a machine-readable JSON report — `go test -bench -json`
# post-processed by cmd/jsbenchjson into BENCH_10.json, which CI uploads
# as an artifact so every build leaves a comparable benchmark record.
# The rows now include the zero-copy -bytes/-mmap variants and the
# large-corpus reader/bytes/mmap triplet over a 100MB jsgen-style
# corpus (E3_CORPUS_BYTES, jsgen -target syntax).
bench-json:
	E3_CORPUS_BYTES=100MB $(GO) test -run '^$$' -bench 'BenchmarkE3(StreamingInference|LargeCorpus)' -benchtime 200ms -benchmem -json . \
		| $(GO) run repro/cmd/jsbenchjson -out BENCH_10.json

# Documentation smoke: formatting is clean, vet is clean, and every
# documented package still renders a doc page.
docs:
	@fmt_out="$$(gofmt -l .)"; if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	@for pkg in $(DOC_PKGS); do \
		$(GO) doc $$pkg >/dev/null || exit 1; done
	@echo "docs ok"

# Run the jsinferd ingest daemon locally (ctrl-C to stop).
serve:
	$(GO) run repro/cmd/jsinferd -addr :8787

# End-to-end daemon smoke: boot jsinferd, POST a checked-in fixture,
# and assert the served schema is byte-identical to `jsinfer -stream`
# over the same file.
smoke-daemon:
	./scripts/smoke_jsinferd.sh

# Regenerate the checked-in NDJSON fixtures (deterministic seeds).
fixtures:
	$(GO) run repro/cmd/jsfixtures -dir testdata

ci: build vet test
