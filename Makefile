GO ?= go

.PHONY: all build vet test race bench fixtures ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race ./internal/infer/ ./internal/typelang/ ./internal/jsontext/

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Regenerate the checked-in NDJSON fixtures (deterministic seeds).
fixtures:
	$(GO) run repro/cmd/jsfixtures -dir testdata

ci: build vet test
