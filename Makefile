GO ?= go

.PHONY: all build vet test race bench fixtures ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race ./internal/infer/ ./internal/typelang/ ./internal/jsontext/

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Short DOM-vs-token streaming benchmark (allocs/op is the headline
# metric); CI runs this as a non-blocking step so the numbers land in
# every build log without gating merges on a noisy runner.
bench-stream:
	$(GO) test -run '^$$' -bench 'BenchmarkE3StreamingInference' -benchtime 200ms -benchmem .

# Regenerate the checked-in NDJSON fixtures (deterministic seeds).
fixtures:
	$(GO) run repro/cmd/jsfixtures -dir testdata

ci: build vet test
