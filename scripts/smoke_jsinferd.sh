#!/usr/bin/env bash
# Daemon smoke test: boot jsinferd, POST a checked-in fixture (identity
# and gzip-encoded), and assert the served schemas are byte-identical to
# batch `jsinfer -stream` over the same file, then assert /metrics
# serves ingest counters that add up. Run from anywhere; used by
# `make smoke-daemon` and CI.
set -euo pipefail
cd "$(dirname "$0")/.."

fixture=testdata/tweets.ndjson
fixture_docs=25

bindir=$(mktemp -d)
pid=""
cleanup() {
    if [ -n "$pid" ]; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$bindir"
}
trap cleanup EXIT

go build -o "$bindir" ./cmd/jsinferd ./cmd/jsinfer

# Boot with port-collision retry: a daemon that dies before becoming
# healthy (typically EADDRINUSE from a stale run) moves to the next
# candidate port instead of failing the smoke.
base=""
for port in 18787 28787 38787 48787; do
    addr=127.0.0.1:$port
    "$bindir/jsinferd" -addr "$addr" &
    pid=$!
    for _ in $(seq 1 50); do
        if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
            base="http://$addr"
            break
        fi
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    [ -n "$base" ] && break
    echo "smoke: port $port unavailable, retrying on the next" >&2
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    pid=""
done
if [ -z "$base" ]; then
    echo "smoke: jsinferd never became healthy on any candidate port" >&2
    exit 1
fi

trace_id=4bf92f3577b34da6a3ce929d0e0e4736
echo "smoke: ingesting $fixture (identity, traced as $trace_id)"
curl -fsS -X POST -H "Traceparent: 00-$trace_id-00f067aa0ba902b7-01" \
    --data-binary "@$fixture" "$base/v1/collections/smoke/ingest"

echo "smoke: ingesting $fixture (gzip)"
gzip -c "$fixture" | curl -fsS -X POST -H 'Content-Encoding: gzip' \
    --data-binary @- "$base/v1/collections/smoke-gz/ingest"

batch=$("$bindir/jsinfer" -stream "$fixture")
for col in smoke smoke-gz; do
    served=$(curl -fsS "$base/v1/collections/$col/schema")
    if [ "$served" != "$batch" ]; then
        echo "smoke: schema mismatch on $col" >&2
        echo "  daemon:  $served" >&2
        echo "  jsinfer: $batch" >&2
        exit 1
    fi
done
echo "smoke: gzip-encoded ingest schema is byte-identical to identity"

metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep -q '^# TYPE jsinferd_ingest_docs_total counter$' || {
    echo "smoke: /metrics lacks the ingest counter TYPE line" >&2
    exit 1
}
want_docs=$((2 * fixture_docs))
echo "$metrics" | grep -q "^jsinferd_ingest_docs_total $want_docs\$" || {
    echo "smoke: jsinferd_ingest_docs_total != $want_docs" >&2
    echo "$metrics" | grep '^jsinferd_ingest' >&2
    exit 1
}
echo "$metrics" | grep -q 'jsinferd_http_requests_total{route="POST /v1/collections/{name}/ingest",code="200"} 2' || {
    echo "smoke: /metrics lacks the metered ingest route" >&2
    exit 1
}
echo "smoke: /metrics counters reconcile ($want_docs docs across 2 encodings)"

# The traced ingest joined the caller's trace and landed in the ring
# with the request's document count on its root span.
traces=$(curl -fsS "$base/debug/traces")
trace_block=$(echo "$traces" | sed -n "/\"trace_id\": \"$trace_id\"/,/\"trace_id\"/p")
if [ -z "$trace_block" ]; then
    echo "smoke: /debug/traces lacks the joined trace $trace_id" >&2
    exit 1
fi
echo "$trace_block" | grep -q "\"docs\": $fixture_docs" || {
    echo "smoke: traced ingest does not carry docs=$fixture_docs" >&2
    echo "$trace_block" >&2
    exit 1
}
echo "$trace_block" | grep -q '"remote": true' || {
    echo "smoke: joined trace is not marked remote" >&2
    exit 1
}
echo "smoke: /debug/traces shows the joined trace with $fixture_docs docs"

stats=$(curl -fsS "$base/v1/stats")
echo "smoke: stats $stats"
echo "$stats" | grep -q "\"docs_absorbed\": $want_docs" || {
    echo "smoke: /v1/stats pipeline.docs_absorbed != $want_docs" >&2
    exit 1
}
echo "smoke ok: served schema is byte-identical to jsinfer -stream"
