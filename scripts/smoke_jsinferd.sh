#!/usr/bin/env bash
# Daemon smoke test: boot jsinferd, POST a checked-in fixture, and
# assert the served schema is byte-identical to batch `jsinfer -stream`
# over the same file (the acceptance criterion of the registry layer).
# Run from anywhere; used by `make smoke-daemon` and CI.
set -euo pipefail
cd "$(dirname "$0")/.."

fixture=testdata/tweets.ndjson
addr=127.0.0.1:18787
base="http://$addr"

bindir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$bindir"
}
trap cleanup EXIT

go build -o "$bindir" ./cmd/jsinferd ./cmd/jsinfer

"$bindir/jsinferd" -addr "$addr" &
pid=$!

for _ in $(seq 1 100); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "smoke: jsinferd exited before becoming healthy" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS "$base/healthz" >/dev/null

echo "smoke: ingesting $fixture"
curl -fsS -X POST --data-binary "@$fixture" "$base/v1/collections/smoke/ingest"

served=$(curl -fsS "$base/v1/collections/smoke/schema")
batch=$("$bindir/jsinfer" -stream "$fixture")

if [ "$served" != "$batch" ]; then
    echo "smoke: schema mismatch" >&2
    echo "  daemon:  $served" >&2
    echo "  jsinfer: $batch" >&2
    exit 1
fi

stats=$(curl -fsS "$base/v1/stats")
echo "smoke: stats $stats"
echo "smoke ok: served schema is byte-identical to jsinfer -stream"
